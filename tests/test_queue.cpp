#include "src/asic/queue.hpp"

#include <gtest/gtest.h>

namespace tpp::asic {
namespace {

TEST(EgressQueue, EnqueueDequeueFifo) {
  EgressQueue q(10'000);
  auto a = net::Packet::make(100);
  const auto idA = a->id();
  q.enqueue(std::move(a));
  q.enqueue(net::Packet::make(200));
  EXPECT_EQ(q.bytes(), 300u);
  EXPECT_EQ(q.packets(), 2u);
  const auto out = q.dequeue();
  EXPECT_EQ(out->id(), idA);
  EXPECT_EQ(q.bytes(), 200u);
}

TEST(EgressQueue, DropTailOnOverflow) {
  EgressQueue q(250);
  EXPECT_TRUE(q.enqueue(net::Packet::make(200)));
  EXPECT_FALSE(q.enqueue(net::Packet::make(100)));  // would exceed 250
  EXPECT_EQ(q.stats().droppedPackets, 1u);
  EXPECT_EQ(q.stats().droppedBytes, 100u);
  EXPECT_EQ(q.bytes(), 200u);
}

TEST(EgressQueue, ExactFitAdmits) {
  EgressQueue q(300);
  EXPECT_TRUE(q.enqueue(net::Packet::make(300)));
}

TEST(EgressQueue, CumulativeCountersSurviveDequeue) {
  EgressQueue q(10'000);
  q.enqueue(net::Packet::make(100));
  q.dequeue();
  EXPECT_EQ(q.stats().enqueuedBytes, 100u);
  EXPECT_EQ(q.stats().enqueuedPackets, 1u);
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(EgressQueue, DequeueEmptyReturnsNull) {
  EgressQueue q(100);
  EXPECT_EQ(q.dequeue(), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(PortQueueBank, TotalsAcrossQueues) {
  PortQueueBank bank(4, 1000);
  bank.queue(0).enqueue(net::Packet::make(100));
  bank.queue(2).enqueue(net::Packet::make(200));
  EXPECT_EQ(bank.totalBytes(), 300u);
  EXPECT_FALSE(bank.allEmpty());
}

TEST(PortQueueBank, RoundRobinVisitsAllNonEmpty) {
  PortQueueBank bank(4, 10'000);
  bank.queue(1).enqueue(net::Packet::make(10));
  bank.queue(3).enqueue(net::Packet::make(10));
  bank.queue(1).enqueue(net::Packet::make(10));
  const auto first = bank.nextNonEmpty();
  ASSERT_TRUE(first);
  EXPECT_EQ(*first, 1u);
  bank.queue(*first).dequeue();
  const auto second = bank.nextNonEmpty();
  ASSERT_TRUE(second);
  EXPECT_EQ(*second, 3u);  // RR cursor moved past queue 1
  bank.queue(*second).dequeue();
  const auto third = bank.nextNonEmpty();
  ASSERT_TRUE(third);
  EXPECT_EQ(*third, 1u);
}

TEST(PortQueueBank, NextNonEmptyWhenAllEmpty) {
  PortQueueBank bank(4, 1000);
  EXPECT_FALSE(bank.nextNonEmpty());
  EXPECT_TRUE(bank.allEmpty());
}

}  // namespace
}  // namespace tpp::asic
