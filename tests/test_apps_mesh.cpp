#include "src/apps/mesh_prober.hpp"

#include <gtest/gtest.h>

#include "src/host/topology.hpp"

namespace tpp::apps {
namespace {

using host::Testbed;

struct MeshFixture : public ::testing::Test {
  Testbed tb;
  host::FatTreeIndex ix;

  void SetUp() override {
    ix = buildFatTree(tb, 4, host::LinkParams{1'000'000'000,
                                              sim::Time::us(2)});
  }

  std::vector<MeshProber::Pair> crossPodPairs() {
    // One representative host per pod; probe pod 0 -> 1, 1 -> 2, 2 -> 3.
    std::vector<MeshProber::Pair> pairs;
    for (std::size_t p = 0; p + 1 < 4; ++p) {
      pairs.push_back({&tb.host(ix.host(p, 0, 0)),
                       &tb.host(ix.host(p + 1, 0, 0))});
    }
    return pairs;
  }
};

TEST_F(MeshFixture, SweepsAnswerForEveryPair) {
  MeshProber prober(crossPodPairs(), {});
  prober.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(550));
  prober.stop();
  tb.sim().run(tb.sim().now() + sim::Time::ms(10));
  for (std::size_t i = 0; i < prober.pairCount(); ++i) {
    const auto& h = prober.health(i);
    EXPECT_GE(h.sent, 5u) << "pair " << i;
    EXPECT_EQ(h.answered, h.sent) << "pair " << i;
    EXPECT_EQ(h.lastPath.size(), 5u) << "pair " << i;  // cross-pod = 5 hops
  }
  EXPECT_TRUE(prober.unreachablePairs().empty());
  EXPECT_GE(prober.sweepsCompleted(), 4u);
}

TEST_F(MeshFixture, MeasuresRtt) {
  MeshProber prober(crossPodPairs(), {});
  prober.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(350));
  prober.stop();
  tb.sim().run(tb.sim().now() + sim::Time::ms(10));
  const auto& h = prober.health(0);
  ASSERT_GT(h.rttUs.count(), 0u);
  // 10 one-way link traversals + echo; microseconds, not milliseconds.
  EXPECT_GT(h.rttUs.mean(), 5.0);
  EXPECT_LT(h.rttUs.mean(), 500.0);
}

TEST_F(MeshFixture, StablePathsReportNoChange) {
  MeshProber prober(crossPodPairs(), {});
  prober.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(350));
  prober.stop();
  tb.sim().run(tb.sim().now() + sim::Time::ms(10));
  for (std::size_t i = 0; i < prober.pairCount(); ++i) {
    EXPECT_FALSE(prober.health(i).pathChanged) << "pair " << i;
  }
}

TEST_F(MeshFixture, DetectsPathChangeAfterReroute) {
  MeshProber prober(crossPodPairs(), {});
  prober.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(250));
  // Reroute pair 0's flow at its edge switch: pin the default route to the
  // OTHER aggregation uplink (kill ECMP choice).
  auto& edge = tb.sw(ix.edgeSw(0, 0));
  const auto preferred = prober.health(0).lastPath;
  ASSERT_GE(preferred.size(), 2u);
  // Pin to whichever uplink it is NOT currently using: ports r..k-1 = 2,3.
  const auto aggPort =
      preferred[1] == tb.sw(ix.aggSw(0, 0)).config().switchId ? 3u : 2u;
  edge.l3().addMultipath(net::Ipv4Address{0}, 0, {aggPort});
  tb.sim().run(tb.sim().now() + sim::Time::ms(300));
  prober.stop();
  tb.sim().run(tb.sim().now() + sim::Time::ms(10));
  EXPECT_TRUE(prober.health(0).pathChanged);
  EXPECT_TRUE(prober.unreachablePairs().empty());  // still reachable
}

TEST_F(MeshFixture, ReportsUnreachablePairAfterBlackhole) {
  MeshProber prober(crossPodPairs(), {});
  prober.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(250));
  // Blackhole pair 1's destination at its edge switch: drop via TCAM.
  auto& dst = tb.host(ix.host(2, 0, 0));
  asic::TcamKey k;
  k.ipDst = {dst.ip(), 32};
  tb.sw(ix.edgeSw(2, 0)).tcam().add(k, asic::TcamAction{0, std::nullopt,
                                                        /*drop=*/true},
                                    1000);
  tb.sim().run(tb.sim().now() + sim::Time::ms(300));
  prober.stop();
  tb.sim().run(tb.sim().now() + sim::Time::ms(10));
  const auto unreachable = prober.unreachablePairs();
  // Pair 1's probes die at the blackhole; pair 2's probes get through but
  // their ECHOES return to the blackholed host, so both pairs go dark —
  // exactly what an operator sees when one host's /32 is poisoned.
  ASSERT_EQ(unreachable.size(), 2u);
  EXPECT_EQ(unreachable[0], 1u);
  EXPECT_EQ(unreachable[1], 2u);
}

}  // namespace
}  // namespace tpp::apps
