#include "src/tcpu/tcpu.hpp"

#include <gtest/gtest.h>

#include <map>

#include "src/core/program.hpp"
#include "src/net/ethernet.hpp"

namespace tpp::tcpu {
namespace {

using core::AddressingMode;
using core::Fault;
using core::Opcode;
using core::Program;
using core::ProgramBuilder;
using core::TppView;

// In-memory switch address space with scripted permissions.
class FakeMemory final : public AddressSpace {
 public:
  std::map<std::uint16_t, std::uint32_t> words;
  std::uint16_t readOnlyAbove = 0xffff;  // addresses >= this are read-only
  std::uint16_t deniedTask = 0xffff;     // this task is grant-denied

  ReadResult read(std::uint16_t address, std::uint16_t taskId) override {
    if (taskId == deniedTask) return ReadResult::fail(Fault::GrantViolation);
    const auto it = words.find(address);
    if (it == words.end()) return ReadResult::fail(Fault::UnmappedAddress);
    return ReadResult::ok(it->second);
  }

  Fault write(std::uint16_t address, std::uint32_t value,
              std::uint16_t taskId) override {
    if (taskId == deniedTask) return Fault::GrantViolation;
    if (address >= readOnlyAbove) return Fault::ReadOnlyViolation;
    if (!words.contains(address)) return Fault::UnmappedAddress;
    words[address] = value;
    return Fault::None;
  }
};

struct Harness {
  net::PacketPtr packet;
  std::optional<TppView> view;

  explicit Harness(const Program& program) {
    packet = core::buildTppFrame(net::MacAddress::fromIndex(1),
                                 net::MacAddress::fromIndex(2), program);
    view = TppView::at(*packet, net::kEthernetHeaderSize);
    EXPECT_TRUE(view);
  }
};

TEST(Tcpu, PushCopiesSwitchWordAndAdvancesSp) {
  ProgramBuilder b;
  b.push(0xb000);
  b.reserve(4);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0xb000] = 0xa0;
  Tcpu tcpu;
  const auto report = tcpu.execute(*h.view, mem);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.executed, 1u);
  EXPECT_EQ(h.view->pmemWord(0), 0xa0u);
  EXPECT_EQ(h.view->stackPointer(), 4);
}

TEST(Tcpu, RepeatedExecutionModelsMultiHop) {
  // Fig 1: the same PUSH executes at each hop, stacking snapshots.
  ProgramBuilder b;
  b.push(0xb000);
  b.reserve(3);
  Harness h(*b.build());
  FakeMemory mem;
  Tcpu tcpu;
  for (const std::uint32_t qsize : {0x00u, 0xa0u, 0x0eu}) {
    mem.words[0xb000] = qsize;
    tcpu.execute(*h.view, mem);
  }
  EXPECT_EQ(h.view->pmemWord(0), 0x00u);
  EXPECT_EQ(h.view->pmemWord(1), 0xa0u);
  EXPECT_EQ(h.view->pmemWord(2), 0x0eu);
  EXPECT_EQ(h.view->stackPointer(), 12);
  EXPECT_EQ(h.view->hopNumber(), 3);
}

TEST(Tcpu, PushOverflowFaults) {
  ProgramBuilder b;
  b.push(0xb000);
  b.reserve(1);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0xb000] = 1;
  Tcpu tcpu;
  EXPECT_TRUE(tcpu.execute(*h.view, mem).ok());   // fills the only slot
  const auto report = tcpu.execute(*h.view, mem);  // overflows
  EXPECT_EQ(report.fault, Fault::PmemOutOfBounds);
  EXPECT_EQ(h.view->faultCode(), Fault::PmemOutOfBounds);
  EXPECT_TRUE(h.view->flags() & core::kFlagFaulted);
}

TEST(Tcpu, PopWritesSwitchAndRetreatsSp) {
  ProgramBuilder b;
  b.push(0xb000);
  b.pop(0xe000);
  b.reserve(2);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0xb000] = 77;
  mem.words[0xe000] = 0;
  Tcpu tcpu;
  const auto report = tcpu.execute(*h.view, mem);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(mem.words[0xe000], 77u);
  EXPECT_EQ(h.view->stackPointer(), 0);
}

TEST(Tcpu, PopUnderflowFaults) {
  ProgramBuilder b;
  b.pop(0xe000);
  b.reserve(2);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0xe000] = 0;
  Tcpu tcpu;
  EXPECT_EQ(tcpu.execute(*h.view, mem).fault, Fault::PmemOutOfBounds);
}

TEST(Tcpu, LoadStoreAbsoluteIndices) {
  ProgramBuilder b;
  b.load(0x1000, 1);
  b.store(0xe000, 1);
  b.reserve(2);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 5;
  mem.words[0xe000] = 0;
  Tcpu tcpu;
  EXPECT_TRUE(tcpu.execute(*h.view, mem).ok());
  EXPECT_EQ(h.view->pmemWord(1), 5u);
  EXPECT_EQ(mem.words[0xe000], 5u);
}

TEST(Tcpu, HopModeLoadsIntoHopRecord) {
  ProgramBuilder b;
  b.mode(AddressingMode::Hop).perHop(2).reserve(6);
  b.load(0x1000, 0);
  b.load(0xb000, 1);
  Harness h(*b.build());
  FakeMemory mem;
  Tcpu tcpu;
  for (std::uint32_t hop = 0; hop < 3; ++hop) {
    mem.words[0x1000] = 100 + hop;  // switch id
    mem.words[0xb000] = 200 + hop;  // queue size
    EXPECT_TRUE(tcpu.execute(*h.view, mem).ok());
  }
  // LOAD [..], [Packet:hop[k]] lands at hop*perHop + k (§3.2.2).
  EXPECT_EQ(h.view->pmemWord(0), 100u);
  EXPECT_EQ(h.view->pmemWord(1), 200u);
  EXPECT_EQ(h.view->pmemWord(2), 101u);
  EXPECT_EQ(h.view->pmemWord(3), 201u);
  EXPECT_EQ(h.view->pmemWord(4), 102u);
  EXPECT_EQ(h.view->pmemWord(5), 202u);
}

TEST(Tcpu, HopModeOverflowFaultsAsHopOverflow) {
  ProgramBuilder b;
  b.mode(AddressingMode::Hop).perHop(2).reserve(2);  // room for one hop
  b.load(0x1000, 0);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 1;
  Tcpu tcpu;
  EXPECT_TRUE(tcpu.execute(*h.view, mem).ok());
  EXPECT_EQ(tcpu.execute(*h.view, mem).fault, Fault::HopOverflow);
}

TEST(Tcpu, CstoreSwapsWhenConditionHolds) {
  ProgramBuilder b;
  std::uint8_t off = 0;
  b.cstore(0xe000, /*cond=*/10, /*src=*/99, &off);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0xe000] = 10;
  Tcpu tcpu;
  EXPECT_TRUE(tcpu.execute(*h.view, mem).ok());
  EXPECT_EQ(mem.words[0xe000], 99u);
  // Old value written back; equal to cond ⇒ caller knows it succeeded.
  EXPECT_EQ(h.view->pmemWord(off), 10u);
}

TEST(Tcpu, CstoreRefusesWhenConditionFails) {
  ProgramBuilder b;
  std::uint8_t off = 0;
  b.cstore(0xe000, /*cond=*/10, /*src=*/99, &off);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0xe000] = 11;
  Tcpu tcpu;
  EXPECT_TRUE(tcpu.execute(*h.view, mem).ok());
  EXPECT_EQ(mem.words[0xe000], 11u);   // unchanged
  EXPECT_EQ(h.view->pmemWord(off), 11u);  // observed value reported
}

TEST(Tcpu, CexecPredicatePassExecutesRest) {
  ProgramBuilder b;
  b.cexec(0x1000, 0xffffffff, 7);
  b.storeImm(0xe000, 42);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 7;
  mem.words[0xe000] = 0;
  Tcpu tcpu;
  const auto report = tcpu.execute(*h.view, mem);
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.cexecSkipped);
  EXPECT_EQ(report.executed, 2u);
  EXPECT_EQ(mem.words[0xe000], 42u);
}

TEST(Tcpu, CexecPredicateFailSkipsRest) {
  ProgramBuilder b;
  b.cexec(0x1000, 0xffffffff, 7);
  b.storeImm(0xe000, 42);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 8;  // wrong switch
  mem.words[0xe000] = 0;
  Tcpu tcpu;
  const auto report = tcpu.execute(*h.view, mem);
  EXPECT_TRUE(report.ok());  // a failed predicate is not a fault
  EXPECT_TRUE(report.cexecSkipped);
  EXPECT_EQ(report.executed, 1u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(mem.words[0xe000], 0u);
  EXPECT_TRUE(h.view->flags() & core::kFlagCexecSkipped);
}

TEST(Tcpu, CexecMaskSelectsBits) {
  ProgramBuilder b;
  // reg = 0x12345678; reg & 0x0000ff00 == 0x00005600.
  b.cexec(0x1000, 0x0000ff00, 0x00005600);
  b.storeImm(0xe000, 1);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 0x12345678;
  mem.words[0xe000] = 0;
  Tcpu tcpu;
  EXPECT_FALSE(tcpu.execute(*h.view, mem).cexecSkipped);
  EXPECT_EQ(mem.words[0xe000], 1u);
}

TEST(Tcpu, ArithmeticOps) {
  ProgramBuilder b;
  const auto accIdx = b.imm(100);
  b.add(0x1000, accIdx);
  b.sub(0x1001, accIdx);
  b.minOp(0x1002, accIdx);
  b.maxOp(0x1003, accIdx);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 20;  // 100 + 20 = 120
  mem.words[0x1001] = 30;  // 120 - 30 = 90
  mem.words[0x1002] = 50;  // min(90, 50) = 50
  mem.words[0x1003] = 70;  // max(50, 70) = 70
  Tcpu tcpu;
  EXPECT_TRUE(tcpu.execute(*h.view, mem).ok());
  EXPECT_EQ(h.view->pmemWord(accIdx), 70u);
}

TEST(Tcpu, SubWrapsLikeHardware) {
  ProgramBuilder b;
  const auto idx = b.imm(1);
  b.sub(0x1000, idx);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 2;
  Tcpu tcpu;
  EXPECT_TRUE(tcpu.execute(*h.view, mem).ok());
  EXPECT_EQ(h.view->pmemWord(idx), 0xffffffffu);  // 1 - 2 mod 2^32
}

TEST(Tcpu, UnmappedReadFaultsAndStops) {
  ProgramBuilder b;
  b.push(0x0123);
  b.push(0x1000);
  b.reserve(4);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 1;
  Tcpu tcpu;
  const auto report = tcpu.execute(*h.view, mem);
  EXPECT_EQ(report.fault, Fault::UnmappedAddress);
  EXPECT_EQ(report.executed, 0u);       // first instruction faulted
  EXPECT_EQ(h.view->stackPointer(), 0);  // nothing pushed
}

TEST(Tcpu, ReadOnlyWriteFaults) {
  ProgramBuilder b;
  b.storeImm(0xf000, 1);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0xf000] = 0;
  mem.readOnlyAbove = 0xf000;
  Tcpu tcpu;
  EXPECT_EQ(tcpu.execute(*h.view, mem).fault, Fault::ReadOnlyViolation);
  EXPECT_EQ(mem.words[0xf000], 0u);
}

TEST(Tcpu, GrantViolationSurfacesInHeader) {
  ProgramBuilder b;
  b.task(13);
  b.push(0x1000);
  b.reserve(2);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 1;
  mem.deniedTask = 13;
  Tcpu tcpu;
  EXPECT_EQ(tcpu.execute(*h.view, mem).fault, Fault::GrantViolation);
  EXPECT_EQ(h.view->faultCode(), Fault::GrantViolation);
}

TEST(Tcpu, BadInstructionFaults) {
  ProgramBuilder b;
  b.push(0x1000);
  b.reserve(2);
  Harness h(*b.build());
  // Corrupt the opcode on the wire.
  h.packet->bytes()[net::kEthernetHeaderSize + core::kTppHeaderSize] = 0x7f;
  FakeMemory mem;
  Tcpu tcpu;
  EXPECT_EQ(tcpu.execute(*h.view, mem).fault, Fault::BadInstruction);
}

TEST(Tcpu, HopCounterAdvancesEvenOnFault) {
  ProgramBuilder b;
  b.push(0x0123);  // unmapped
  b.reserve(1);
  Harness h(*b.build());
  FakeMemory mem;
  Tcpu tcpu;
  tcpu.execute(*h.view, mem);
  EXPECT_EQ(h.view->hopNumber(), 1);
}

TEST(Tcpu, EmptyProgramStillCountsHop) {
  ProgramBuilder b;
  b.reserve(1);
  Harness h(*b.build());
  FakeMemory mem;
  Tcpu tcpu;
  const auto report = tcpu.execute(*h.view, mem);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.executed, 0u);
  EXPECT_EQ(report.cycles, 0u);
  EXPECT_EQ(h.view->hopNumber(), 1);
}

TEST(Tcpu, FaultPersistsAcrossLaterHops) {
  ProgramBuilder b;
  b.push(0x0123);
  b.reserve(1);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x0123] = 1;  // mapped at the SECOND hop only
  Tcpu tcpu;
  FakeMemory unmapped;
  tcpu.execute(*h.view, unmapped);
  tcpu.execute(*h.view, mem);
  // First-fault-wins semantics survive the second, clean execution.
  EXPECT_EQ(h.view->faultCode(), Fault::UnmappedAddress);
}

TEST(Tcpu, LifetimeCounters) {
  ProgramBuilder b;
  b.push(0x1000);
  b.push(0x1000);
  b.reserve(4);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 1;
  Tcpu tcpu;
  tcpu.execute(*h.view, mem);
  tcpu.execute(*h.view, mem);
  EXPECT_EQ(tcpu.tppsProcessed(), 2u);
  EXPECT_EQ(tcpu.instructionsExecuted(), 4u);
  EXPECT_EQ(tcpu.faults(), 0u);
}

// --------------------------------------------------------- cycle model

TEST(CycleModel, PipelineFormula) {
  CycleModel m;
  EXPECT_EQ(m.cycles(0), 0u);
  EXPECT_EQ(m.cycles(1), 4u);   // fill the pipeline
  EXPECT_EQ(m.cycles(5), 8u);   // 4 + 5 - 1
  EXPECT_EQ(m.cycles(20), 23u);
}

TEST(CycleModel, FiveInstructionsFitCutThrough) {
  // §3.3: a handful of instructions hides inside the 300 ns budget at 1 GHz.
  CycleModel m;
  EXPECT_TRUE(m.fitsCutThrough(5));
  EXPECT_TRUE(m.fitsCutThrough(100));
  EXPECT_FALSE(m.fitsCutThrough(500));
}

TEST(CycleModel, NanosScaleWithClock) {
  CycleModel slow{4, 0.5};  // 500 MHz
  EXPECT_DOUBLE_EQ(slow.nanos(5), 16.0);
  CycleModel fast{4, 2.0};  // 2 GHz
  EXPECT_DOUBLE_EQ(fast.nanos(5), 4.0);
}

TEST(Tcpu, ReportsCycles) {
  ProgramBuilder b;
  for (int i = 0; i < 5; ++i) b.push(0x1000);
  b.reserve(8);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0x1000] = 1;
  Tcpu tcpu;
  EXPECT_EQ(tcpu.execute(*h.view, mem).cycles, 8u);
}

TEST(Tcpu, DecodeCacheHitsOnRepeatedProgram) {
  // Same program at every hop (the Fig 1 pattern): one decode, then hits.
  ProgramBuilder b;
  b.push(0xb000);
  b.reserve(8);
  Harness h(*b.build());
  FakeMemory mem;
  mem.words[0xb000] = 1;
  Tcpu tcpu;
  for (int hop = 0; hop < 5; ++hop) tcpu.execute(*h.view, mem);
  EXPECT_EQ(tcpu.decodeCacheMisses(), 1u);
  EXPECT_EQ(tcpu.decodeCacheHits(), 4u);
}

TEST(Tcpu, DecodeCacheDistinguishesPrograms) {
  // Two different programs must not alias to each other's decoded form.
  ProgramBuilder b1;
  b1.push(0xb000);
  b1.reserve(4);
  ProgramBuilder b2;
  b2.load(0xc000, 0);
  b2.reserve(4);
  Harness h1(*b1.build());
  Harness h2(*b2.build());
  FakeMemory mem;
  mem.words[0xb000] = 0x11;
  mem.words[0xc000] = 0x22;
  Tcpu tcpu;
  tcpu.execute(*h1.view, mem);
  tcpu.execute(*h2.view, mem);
  tcpu.execute(*h1.view, mem);
  EXPECT_EQ(h1.view->pmemWord(0), 0x11u);  // PUSH result, hop 0
  EXPECT_EQ(h1.view->pmemWord(1), 0x11u);  // PUSH result, hop 2
  EXPECT_EQ(h2.view->pmemWord(0), 0x22u);  // LOAD result
}

TEST(Tcpu, BadInstructionFaultsOnlyWhenReached) {
  // An undecodable word past a failed CEXEC predicate must not fault —
  // caching whole programs may not change lazy-decode semantics.
  ProgramBuilder b;
  b.cexec(0x1000, 0xffffffff, 0x0);  // predicate false: reg is 5
  b.reserve(8);
  auto program = *b.build();
  program.instructions.push_back(
      {static_cast<core::Opcode>(0x7f), 0, 0});  // undecodable
  Harness h(program);
  FakeMemory mem;
  mem.words[0x1000] = 5;
  Tcpu tcpu;
  const auto report = tcpu.execute(*h.view, mem);
  EXPECT_EQ(report.fault, core::Fault::None);
  EXPECT_TRUE(report.cexecSkipped);

  // Rewind the hop counter and make the predicate pass: now execution
  // reaches the bad word and must fault.
  h.view->setHopNumber(0);
  mem.words[0x1000] = 0;
  const auto report2 = tcpu.execute(*h.view, mem);
  EXPECT_EQ(report2.fault, core::Fault::BadInstruction);
}

}  // namespace
}  // namespace tpp::tcpu
