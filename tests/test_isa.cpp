#include "src/core/isa.hpp"

#include <gtest/gtest.h>

namespace tpp::core {
namespace {

TEST(Isa, EncodeLayout) {
  const Instruction i{Opcode::Load, 0xb000, 0x07};
  EXPECT_EQ(i.encode(), 0x01b00007u);
}

TEST(Isa, DecodeLayout) {
  const auto i = Instruction::decode(0x02a00105u);
  ASSERT_TRUE(i);
  EXPECT_EQ(i->op, Opcode::Store);
  EXPECT_EQ(i->addr, 0xa001);
  EXPECT_EQ(i->pmemOff, 0x05);
}

TEST(Isa, DecodeRejectsUnknownOpcode) {
  EXPECT_FALSE(Instruction::decode(0xff000000u));
  EXPECT_FALSE(Instruction::decode(0x0b000000u));  // one past Max
}

TEST(Isa, FourByteEncoding) {
  // §3.3: "we were able to encode an instruction and its operands in a
  // 4-byte integer."
  static_assert(sizeof(Instruction{}.encode()) == 4);
  static_assert(kInstructionSize == 4);
}

TEST(Isa, WritesSwitchMemoryClassification) {
  EXPECT_TRUE(writesSwitchMemory(Opcode::Store));
  EXPECT_TRUE(writesSwitchMemory(Opcode::Pop));
  EXPECT_TRUE(writesSwitchMemory(Opcode::Cstore));
  EXPECT_FALSE(writesSwitchMemory(Opcode::Load));
  EXPECT_FALSE(writesSwitchMemory(Opcode::Push));
  EXPECT_FALSE(writesSwitchMemory(Opcode::Cexec));
  EXPECT_FALSE(writesSwitchMemory(Opcode::Add));
  EXPECT_FALSE(writesSwitchMemory(Opcode::Nop));
}

TEST(Isa, TwoWordOperandClassification) {
  EXPECT_TRUE(takesTwoPmemWords(Opcode::Cstore));
  EXPECT_TRUE(takesTwoPmemWords(Opcode::Cexec));
  EXPECT_FALSE(takesTwoPmemWords(Opcode::Load));
  EXPECT_FALSE(takesTwoPmemWords(Opcode::Push));
}

TEST(Isa, NameRoundTrip) {
  EXPECT_EQ(opcodeName(Opcode::Cstore), "CSTORE");
  EXPECT_EQ(opcodeFromName("CSTORE"), Opcode::Cstore);
  EXPECT_EQ(opcodeFromName("PUSH"), Opcode::Push);
  EXPECT_FALSE(opcodeFromName("JUMP").has_value());  // no control flow (§3.2)
  EXPECT_FALSE(opcodeFromName("push").has_value());  // case-sensitive
}

class IsaRoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(IsaRoundTrip, EncodeDecodeIdentity) {
  for (const std::uint16_t addr : {0x0000, 0x1000, 0xa001, 0xb000, 0xffff}) {
    for (const std::uint8_t off : {0, 1, 127, 255}) {
      const Instruction in{GetParam(), addr, off};
      const auto out = Instruction::decode(in.encode());
      ASSERT_TRUE(out);
      EXPECT_EQ(*out, in);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, IsaRoundTrip,
    ::testing::Values(Opcode::Nop, Opcode::Load, Opcode::Store, Opcode::Push,
                      Opcode::Pop, Opcode::Cstore, Opcode::Cexec, Opcode::Add,
                      Opcode::Sub, Opcode::Min, Opcode::Max),
    [](const auto& info) {
      return std::string(opcodeName(info.param));
    });

}  // namespace
}  // namespace tpp::core
