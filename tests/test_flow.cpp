#include "src/host/flow.hpp"

#include <gtest/gtest.h>

#include "src/host/topology.hpp"
#include "src/net/byte_io.hpp"

namespace tpp::host {
namespace {

struct FlowFixture : public ::testing::Test {
  Testbed tb;
  void SetUp() override {
    buildChain(tb, 1, LinkParams{1'000'000'000, sim::Time::us(1)});
  }
  FlowSpec specTo(Host& dst, double rateBps) {
    FlowSpec s;
    s.dstMac = dst.mac();
    s.dstIp = dst.ip();
    s.rateBps = rateBps;
    s.payloadBytes = 1000;
    return s;
  }
};

TEST_F(FlowFixture, AchievesConfiguredRate) {
  PacedFlow flow(tb.host(0), specTo(tb.host(1), 100e6), 1);
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(100));
  flow.stop();
  // 100 Mb/s for 100 ms = 1.25 MB of wire bytes; payload fraction is
  // 1000/1066 of that.
  const double expected = 100e6 * 0.1 / 8.0 * (1000.0 / 1066.0);
  EXPECT_NEAR(static_cast<double>(flow.bytesSent()), expected,
              expected * 0.02);
}

TEST_F(FlowFixture, StopsAfterTotalBytes) {
  auto spec = specTo(tb.host(1), 1e9);
  spec.totalBytes = 10'000;
  PacedFlow flow(tb.host(0), spec, 1);
  flow.start(sim::Time::zero());
  tb.sim().run();
  EXPECT_TRUE(flow.finished());
  EXPECT_EQ(flow.bytesSent(), 10'000u);
  EXPECT_EQ(flow.packetsSent(), 10u);
}

TEST_F(FlowFixture, RateChangeTakesEffect) {
  PacedFlow flow(tb.host(0), specTo(tb.host(1), 10e6), 1);
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(50));
  const auto atLow = flow.bytesSent();
  flow.setRateBps(100e6);
  tb.sim().run(sim::Time::ms(100));
  flow.stop();
  const auto atHigh = flow.bytesSent() - atLow;
  EXPECT_GT(static_cast<double>(atHigh), 5.0 * static_cast<double>(atLow));
}

TEST_F(FlowFixture, ZeroRatePausesAndResumes) {
  PacedFlow flow(tb.host(0), specTo(tb.host(1), 10e6), 1);
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(10));
  flow.setRateBps(0.0);
  tb.sim().run(sim::Time::ms(60));
  const auto paused = flow.bytesSent();
  tb.sim().run(sim::Time::ms(110));
  EXPECT_LE(flow.bytesSent() - paused, 1000u);  // at most one in-flight emit
  flow.setRateBps(10e6);
  tb.sim().run(sim::Time::ms(160));
  EXPECT_GT(flow.bytesSent(), paused + 10'000u);
  flow.stop();
}

TEST_F(FlowFixture, StopCancelsPendingEmission) {
  PacedFlow flow(tb.host(0), specTo(tb.host(1), 10e6), 1);
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(10));
  flow.stop();
  const auto sent = flow.bytesSent();
  tb.sim().run(sim::Time::ms(100));
  EXPECT_EQ(flow.bytesSent(), sent);
}

TEST_F(FlowFixture, PayloadCarriesFlowId) {
  std::uint64_t seen = 0;
  tb.host(1).bindUdp(20000, [&](const UdpDatagram& d) {
    std::uint64_t id = 0;
    for (int i = 0; i < 8; ++i) id = (id << 8) | d.payload[static_cast<std::size_t>(i)];
    seen = id;
  });
  PacedFlow flow(tb.host(0), specTo(tb.host(1), 1e6), 0xABCDEF12345678ULL);
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(20));
  flow.stop();
  EXPECT_EQ(seen, 0xABCDEF12345678ULL);
}

TEST_F(FlowFixture, PacketHookDecoratesEveryPacket) {
  int hooked = 0;
  PacedFlow flow(tb.host(0), specTo(tb.host(1), 10e6), 1);
  flow.setPacketHook([&](net::Packet& p) {
    ++hooked;
    EXPECT_GT(p.size(), 0u);
  });
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(10));
  flow.stop();
  EXPECT_EQ(hooked, static_cast<int>(flow.packetsSent()));
  EXPECT_GT(hooked, 0);
}

TEST_F(FlowFixture, StartIsIdempotent) {
  PacedFlow flow(tb.host(0), specTo(tb.host(1), 10e6), 1);
  flow.start(sim::Time::zero());
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(10));
  flow.stop();
  // One pacing loop, not two: ~12 packets at 10 Mb/s in 10 ms.
  EXPECT_LE(flow.packetsSent(), 14u);
}

}  // namespace
}  // namespace tpp::host
