#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tpp::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.tryPop().has_value());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(Time::ms(3), [&] { order.push_back(3); });
  q.push(Time::ms(1), [&] { order.push_back(1); });
  q.push(Time::ms(2), [&] { order.push_back(2); });
  while (auto f = q.tryPop()) f->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.push(Time::ms(5), [&order, i] { order.push_back(i); });
  }
  while (auto f = q.tryPop()) f->fn();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ReportsFiredTime) {
  EventQueue q;
  q.push(Time::us(42), [] {});
  auto f = q.tryPop();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->at, Time::us(42));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  q.push(Time::ms(2), [] {});
  h.cancel();
  EXPECT_EQ(q.nextTime(), Time::ms(2));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.push(Time::ms(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(EventQueue, EmptyAfterAllCancelled) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(q.push(Time::ms(i), [] {}));
  for (auto& h : handles) h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.tryPop().has_value());
}

TEST(EventQueue, HandleOutlivesExecution) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  ASSERT_TRUE(q.tryPop());
  EXPECT_FALSE(h.pending());
  h.cancel();  // after firing: no-op
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(Time::ms(1), [&] { order.push_back(1); });
  auto f1 = q.tryPop();
  f1->fn();
  q.push(Time::ms(3), [&] { order.push_back(3); });
  q.push(Time::ms(2), [&] { order.push_back(2); });
  while (auto f = q.tryPop()) f->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ------------------------------------------------ cancellation edge cases

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  auto fired = q.tryPop();
  ASSERT_TRUE(fired);
  EXPECT_FALSE(h.pending());
  h.cancel();  // fired already: must not disturb later pushes
  bool ran = false;
  q.push(Time::ms(2), [&] { ran = true; });
  while (auto f = q.tryPop()) f->fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, DoubleCancelLeavesSiblingsAlive) {
  EventQueue q;
  auto victim = q.push(Time::ms(1), [] {});
  bool ran = false;
  q.push(Time::ms(1), [&] { ran = true; });
  victim.cancel();
  victim.cancel();  // second cancel must not hit the sibling
  EXPECT_FALSE(victim.pending());
  while (auto f = q.tryPop()) f->fn();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, CancelSameTimestampSiblingMidDispatch) {
  // a, b, c all at t=5ms; a's callback cancels c while the dispatch loop is
  // mid-flight through that timestamp. Only a and b may run.
  EventQueue q;
  std::vector<char> order;
  EventHandle hc;
  q.push(Time::ms(5), [&] {
    order.push_back('a');
    hc.cancel();
  });
  q.push(Time::ms(5), [&] { order.push_back('b'); });
  hc = q.push(Time::ms(5), [&] { order.push_back('c'); });
  while (auto f = q.tryPop()) f->fn();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b'}));
  EXPECT_FALSE(hc.pending());
}

TEST(EventQueue, CancelEarlierSiblingMidDispatchIsNoop) {
  // The handle being cancelled already fired earlier in the same timestamp.
  EventQueue q;
  std::vector<char> order;
  EventHandle ha = q.push(Time::ms(5), [&] { order.push_back('a'); });
  q.push(Time::ms(5), [&] {
    order.push_back('b');
    ha.cancel();  // a already ran: no-op
  });
  q.push(Time::ms(5), [&] { order.push_back('c'); });
  while (auto f = q.tryPop()) f->fn();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c'}));
}

TEST(EventQueue, EmptyPurgesCancelledHeads) {
  EventQueue q;
  std::vector<EventHandle> heads;
  for (int i = 0; i < 4; ++i) {
    heads.push_back(q.push(Time::ms(i), [] {}));
  }
  q.push(Time::ms(10), [] {});
  for (auto& h : heads) h.cancel();
  ASSERT_EQ(q.size(), 5u);
  EXPECT_FALSE(q.empty());  // live tail remains...
  EXPECT_EQ(q.size(), 1u);  // ...but the cancelled heads were purged
  EXPECT_EQ(q.nextTime(), Time::ms(10));
}

TEST(EventQueue, CopiedHandlesShareCancellation) {
  EventQueue q;
  auto h1 = q.push(Time::ms(1), [] {});
  EventHandle h2 = h1;
  h1.cancel();
  EXPECT_FALSE(h2.pending());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleHandleDoesNotCancelLaterEvent) {
  // A handle whose event was cancelled (or fired) must stay inert even
  // after the queue's internal storage is reused by later pushes.
  EventQueue q;
  auto h1 = q.push(Time::ms(1), [] {});
  h1.cancel();
  EXPECT_TRUE(q.empty());
  std::vector<EventHandle> later;
  bool ran = false;
  for (int i = 0; i < 8; ++i) {
    later.push_back(q.push(Time::ms(i + 1), [&] { ran = true; }));
  }
  h1.cancel();  // stale: must not kill any of the new events
  EXPECT_FALSE(h1.pending());
  for (auto& h : later) EXPECT_TRUE(h.pending());
  std::size_t fired = 0;
  while (auto f = q.tryPop()) {
    f->fn();
    ++fired;
  }
  EXPECT_EQ(fired, 8u);
  EXPECT_TRUE(ran);
}

TEST(EventQueue, ManyChurningCancellations) {
  // Interleaved push/cancel/pop across many rounds: live events always
  // fire, cancelled ones never do, regardless of internal slot reuse.
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    auto keep = q.push(Time::ms(round), [&] { ++fired; });
    auto kill = q.push(Time::ms(round), [&] { ADD_FAILURE(); });
    kill.cancel();
    EXPECT_TRUE(keep.pending());
    EXPECT_FALSE(kill.pending());
  }
  while (auto f = q.tryPop()) f->fn();
  EXPECT_EQ(fired, 100);
}

}  // namespace
}  // namespace tpp::sim
