#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tpp::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.tryPop().has_value());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(Time::ms(3), [&] { order.push_back(3); });
  q.push(Time::ms(1), [&] { order.push_back(1); });
  q.push(Time::ms(2), [&] { order.push_back(2); });
  while (auto f = q.tryPop()) f->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.push(Time::ms(5), [&order, i] { order.push_back(i); });
  }
  while (auto f = q.tryPop()) f->fn();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ReportsFiredTime) {
  EventQueue q;
  q.push(Time::us(42), [] {});
  auto f = q.tryPop();
  ASSERT_TRUE(f);
  EXPECT_EQ(f->at, Time::us(42));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  q.push(Time::ms(2), [] {});
  h.cancel();
  EXPECT_EQ(q.nextTime(), Time::ms(2));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.push(Time::ms(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  h.cancel();
  h.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(EventQueue, EmptyAfterAllCancelled) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(q.push(Time::ms(i), [] {}));
  for (auto& h : handles) h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.tryPop().has_value());
}

TEST(EventQueue, HandleOutlivesExecution) {
  EventQueue q;
  auto h = q.push(Time::ms(1), [] {});
  ASSERT_TRUE(q.tryPop());
  EXPECT_FALSE(h.pending());
  h.cancel();  // after firing: no-op
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(Time::ms(1), [&] { order.push_back(1); });
  auto f1 = q.tryPop();
  f1->fn();
  q.push(Time::ms(3), [&] { order.push_back(3); });
  q.push(Time::ms(2), [&] { order.push_back(2); });
  while (auto f = q.tryPop()) f->fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace tpp::sim
