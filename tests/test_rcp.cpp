#include "src/rcp/rcp.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tpp::rcp {
namespace {

constexpr double kCapacity = 10e6;  // Fig 2's 10 Mb/s bottleneck

RcpParams params() {
  RcpParams p;
  p.alpha = 0.5;
  p.beta = 1.0;
  p.rttSeconds = 0.01;
  return p;
}

TEST(RcpStep, UnderUtilizedLinkRaisesRate) {
  const double next =
      rcpStep(kCapacity / 2, kCapacity, /*offered=*/kCapacity / 4,
              /*qBits=*/0, /*T=*/0.01, params());
  EXPECT_GT(next, kCapacity / 2);
}

TEST(RcpStep, OverSubscribedLinkLowersRate) {
  const double next =
      rcpStep(kCapacity, kCapacity, /*offered=*/2 * kCapacity,
              /*qBits=*/0, 0.01, params());
  EXPECT_LT(next, kCapacity);
}

TEST(RcpStep, StandingQueueLowersRate) {
  const double next = rcpStep(kCapacity, kCapacity, /*offered=*/kCapacity,
                              /*qBits=*/kCapacity * 0.01, 0.01, params());
  EXPECT_LT(next, kCapacity);
}

TEST(RcpStep, PerfectUtilizationNoQueueIsFixedPoint) {
  const double next = rcpStep(kCapacity / 3, kCapacity, kCapacity, 0.0,
                              0.01, params());
  EXPECT_DOUBLE_EQ(next, kCapacity / 3);
}

TEST(RcpStep, ClampsToCapacity) {
  const double next = rcpStep(kCapacity, kCapacity, 0.0, 0.0, 1.0, params());
  EXPECT_DOUBLE_EQ(next, kCapacity);
}

TEST(RcpStep, ClampsToFloor) {
  const double next =
      rcpStep(kCapacity, kCapacity, 100 * kCapacity, 1e9, 1.0, params());
  EXPECT_DOUBLE_EQ(next, params().minRateFraction * kCapacity);
}

// Closed-loop property: simulate N flows all obeying R(t); R must converge
// to about C/N regardless of starting point. (This is the Fig 2 dynamic in
// miniature, without the packet-level machinery.)
class RcpConvergence : public ::testing::TestWithParam<int> {};

TEST_P(RcpConvergence, ConvergesToFairShare) {
  const int flows = GetParam();
  const double T = 0.01;
  double R = kCapacity;  // start optimistic
  double queueBits = 0.0;
  for (int step = 0; step < 600; ++step) {
    const double offered = std::min(flows * R, 10 * kCapacity);
    // Fluid queue: excess arrival accumulates, drain at capacity.
    queueBits = std::max(0.0, queueBits + (offered - kCapacity) * T);
    queueBits = std::min(queueBits, 4e6);  // finite buffer
    R = rcpStep(R, kCapacity, offered, queueBits, T, params());
  }
  EXPECT_NEAR(R * flows, kCapacity, kCapacity * 0.15);
  EXPECT_LT(queueBits, 1e6);  // queue drained at equilibrium
}

INSTANTIATE_TEST_SUITE_P(FlowCounts, RcpConvergence,
                         ::testing::Values(1, 2, 3, 5, 10));

TEST(RcpHeader, WriteParseRoundTrip) {
  std::vector<std::uint8_t> payload(32, 0);
  RcpHeader h;
  h.rateKbps = 125'000;
  h.rttMicros = 250;
  h.write(payload);
  const auto parsed = RcpHeader::parse(payload);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->rateKbps, 125'000u);
  EXPECT_EQ(parsed->rttMicros, 250u);
}

TEST(RcpHeader, ParseRejectsWrongMagic) {
  std::vector<std::uint8_t> payload(32, 0);
  EXPECT_FALSE(RcpHeader::parse(payload));
}

TEST(RcpHeader, ParseRejectsShortPayload) {
  std::vector<std::uint8_t> payload(8, 0);
  EXPECT_FALSE(RcpHeader::parse(payload));
}

TEST(RcpHeader, StampLowersButNeverRaises) {
  std::vector<std::uint8_t> payload(32, 0);
  RcpHeader h;
  h.rateKbps = 1000;
  h.write(payload);
  EXPECT_FALSE(RcpHeader::stampMinRate(payload, 2000));  // higher: no-op
  EXPECT_EQ(RcpHeader::parse(payload)->rateKbps, 1000u);
  EXPECT_TRUE(RcpHeader::stampMinRate(payload, 500));
  EXPECT_EQ(RcpHeader::parse(payload)->rateKbps, 500u);
}

TEST(RcpHeader, StampIgnoresNonRcpPayload) {
  std::vector<std::uint8_t> payload(32, 0x77);
  EXPECT_FALSE(RcpHeader::stampMinRate(payload, 1));
}

}  // namespace
}  // namespace tpp::rcp
