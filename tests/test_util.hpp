// Shared test helpers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace tpp::test {

// The chaos/golden suites derive all randomness from TPP_CHAOS_SEED so a
// failing seed reproduces bit-for-bit:
//     TPP_CHAOS_SEED=<seed> ctest -L chaos
// A malformed value is a hard error, not a silent fallback to some default
// seed — "reproducing" under the wrong seed is worse than failing loudly.
inline std::uint64_t chaosSeed(std::uint64_t defaultSeed = 1) {
  const char* s = std::getenv("TPP_CHAOS_SEED");
  if (s == nullptr || *s == '\0') return defaultSeed;
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "TPP_CHAOS_SEED=\"%s\" is not a number\n", s);
    std::abort();
  }
  return seed;
}

}  // namespace tpp::test
