#include "src/apps/microburst.hpp"

#include <gtest/gtest.h>

#include "src/host/topology.hpp"
#include "src/workload/generators.hpp"

namespace tpp::apps {
namespace {

using host::Testbed;

TEST(QueueProbeProgram, MatchesPaperShape) {
  const auto p = makeQueueProbeProgram(5);
  ASSERT_EQ(p.instructions.size(), 2u);
  EXPECT_EQ(p.instructions[0].op, core::Opcode::Push);
  EXPECT_EQ(p.instructions[1].op, core::Opcode::Push);
  EXPECT_EQ(p.instructions[1].addr, core::addr::QueueBytes);
  EXPECT_EQ(p.pmemWords, 10);  // 2 words x 5 hops preallocated (§2.1)
}

TEST(DetectBursts, FindsExcursions) {
  sim::TimeSeries s;
  // Flat, spike, flat, spike.
  const double vals[] = {0, 0, 100, 200, 150, 0, 0, 300, 0};
  for (int i = 0; i < 9; ++i) {
    s.add(sim::Time::us(100 * i), vals[i]);
  }
  const auto bursts = detectBursts(s, 100.0);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].start, sim::Time::us(200));
  EXPECT_DOUBLE_EQ(bursts[0].peakBytes, 200.0);
  EXPECT_DOUBLE_EQ(bursts[1].peakBytes, 300.0);
}

TEST(DetectBursts, OpenBurstAtEndIsReported) {
  sim::TimeSeries s;
  s.add(sim::Time::us(0), 0);
  s.add(sim::Time::us(1), 500);
  const auto bursts = detectBursts(s, 100.0);
  ASSERT_EQ(bursts.size(), 1u);
}

TEST(DetectBursts, EmptyAndQuietSeries) {
  sim::TimeSeries s;
  EXPECT_TRUE(detectBursts(s, 10).empty());
  s.add(sim::Time::us(1), 5);
  EXPECT_TRUE(detectBursts(s, 10).empty());
}

TEST(DetectionRecall, OverlapCounts) {
  std::vector<Burst> ref{{sim::Time::ms(1), sim::Time::ms(2), 10},
                         {sim::Time::ms(5), sim::Time::ms(6), 10}};
  std::vector<Burst> obs{{sim::Time::ms(1), sim::Time::ms(3), 8}};
  EXPECT_DOUBLE_EQ(detectionRecall(ref, obs), 0.5);
  EXPECT_DOUBLE_EQ(detectionRecall(ref, ref), 1.0);
  EXPECT_DOUBLE_EQ(detectionRecall({}, obs), 1.0);
  EXPECT_DOUBLE_EQ(detectionRecall(ref, {}), 0.0);
}

struct MicroburstFixture : public ::testing::Test {
  Testbed tb;
  static constexpr std::size_t kSenders = 4;

  void SetUp() override {
    asic::SwitchConfig cfg;
    cfg.bufferPerQueueBytes = 256 * 1024;
    buildStar(tb, kSenders, host::LinkParams{1'000'000'000, sim::Time::us(2)},
              cfg);
  }
  host::Host& receiver() { return tb.host(kSenders); }

  workload::IncastBurst makeIncast(sim::Time period) {
    workload::IncastBurst::Config cfg;
    cfg.dstMac = receiver().mac();
    cfg.dstIp = receiver().ip();
    cfg.burstBytes = 60'000;
    cfg.period = period;
    std::vector<host::Host*> senders;
    for (std::size_t i = 0; i < kSenders; ++i) senders.push_back(&tb.host(i));
    return workload::IncastBurst(senders, cfg);
  }
};

TEST_F(MicroburstFixture, MonitorSeesQueueExcursions) {
  auto incast = makeIncast(sim::Time::ms(5));
  incast.start(sim::Time::ms(1));

  // Probe from an otherwise-idle sender toward the incast receiver: the
  // probe shares the congested egress port.
  MicroburstMonitor::Config mcfg;
  mcfg.dstMac = receiver().mac();
  mcfg.dstIp = receiver().ip();
  mcfg.interval = sim::Time::us(100);
  MicroburstMonitor monitor(tb.host(0), mcfg);
  monitor.start(sim::Time::zero());

  tb.sim().run(sim::Time::ms(50));
  monitor.stop();
  incast.stop();
  tb.sim().run();

  ASSERT_EQ(monitor.hopsObserved(), 1u);
  EXPECT_EQ(monitor.hopSwitchId(0), tb.sw(0).config().switchId);
  EXPECT_GT(monitor.resultsReceived(), 100u);
  const auto bursts = detectBursts(monitor.hopSeries(0), 50'000.0);
  EXPECT_GE(bursts.size(), 5u);  // one per incast round
}

TEST_F(MicroburstFixture, CoarsePollingMissesWhatProbesCatch) {
  auto incast = makeIncast(sim::Time::ms(10));
  incast.start(sim::Time::ms(1));

  MicroburstMonitor::Config mcfg;
  mcfg.dstMac = receiver().mac();
  mcfg.dstIp = receiver().ip();
  mcfg.interval = sim::Time::us(100);
  MicroburstMonitor monitor(tb.host(0), mcfg);
  monitor.start(sim::Time::zero());

  // "Today's monitoring mechanisms operate on timescales of 10s of
  // seconds at best" — here even a generous 25 ms poller fails.
  ControlPlanePoller poller(tb.sw(0), /*port=*/kSenders, /*queue=*/0,
                            sim::Time::ms(25));
  poller.start(sim::Time::zero());
  // Ground truth at 10 us resolution.
  ControlPlanePoller truth(tb.sw(0), kSenders, 0, sim::Time::us(10));
  truth.start(sim::Time::zero());

  tb.sim().run(sim::Time::ms(100));
  monitor.stop();
  incast.stop();
  poller.stop();
  truth.stop();
  tb.sim().run();

  const double threshold = 50'000.0;
  const auto reference = detectBursts(truth.series(), threshold);
  ASSERT_GE(reference.size(), 5u);
  const auto viaTpp = detectBursts(monitor.hopSeries(0), threshold);
  const auto viaPolling = detectBursts(poller.series(), threshold);
  EXPECT_GE(detectionRecall(reference, viaTpp), 0.8);
  EXPECT_LE(detectionRecall(reference, viaPolling), 0.5);
}

TEST_F(MicroburstFixture, QuietNetworkShowsNoBursts) {
  MicroburstMonitor::Config mcfg;
  mcfg.dstMac = receiver().mac();
  mcfg.dstIp = receiver().ip();
  mcfg.interval = sim::Time::us(200);
  MicroburstMonitor monitor(tb.host(0), mcfg);
  monitor.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(20));
  monitor.stop();
  tb.sim().run();
  EXPECT_TRUE(detectBursts(monitor.hopSeries(0), 10'000.0).empty());
}

}  // namespace
}  // namespace tpp::apps
