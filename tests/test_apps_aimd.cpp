#include "src/apps/aimd.hpp"

#include <gtest/gtest.h>

#include "src/host/topology.hpp"

namespace tpp::apps {
namespace {

using host::Testbed;

constexpr std::uint64_t kBottleneck = 10'000'000;

struct AimdFixture : public ::testing::Test {
  Testbed tb;
  void SetUp() override {
    asic::SwitchConfig cfg;
    cfg.bufferPerQueueBytes = 32 * 1024;
    buildDumbbell(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{kBottleneck, sim::Time::ms(1)}, cfg);
  }
  host::FlowSpec specFor(std::size_t pair, double rateBps) {
    host::FlowSpec s;
    s.dstMac = tb.host(2 + pair).mac();
    s.dstIp = tb.host(2 + pair).ip();
    s.srcPort = static_cast<std::uint16_t>(23000 + pair);
    s.dstPort = s.srcPort;
    s.rateBps = rateBps;
    return s;
  }
};

TEST_F(AimdFixture, ClimbsAdditivelyWithoutLoss) {
  host::PacedFlow flow(tb.host(0), specFor(0, 200e3), 1);
  AimdController::Config cfg;
  cfg.rtt = sim::Time::ms(50);
  cfg.additiveBps = 100e3;
  AimdController ctl(flow, tb.host(2), cfg);
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(1));
  // 20 loss-free periods: 200k + 20*100k ≈ 2.2 Mb/s (below bottleneck, so
  // genuinely no loss).
  EXPECT_NEAR(ctl.currentRateBps(), 2.2e6, 0.3e6);
  EXPECT_EQ(ctl.lossesDetected(), 0u);
  ctl.stop();
}

TEST_F(AimdFixture, BacksOffOnLoss) {
  host::PacedFlow flow(tb.host(0), specFor(0, 200e3), 1);
  AimdController::Config cfg;
  cfg.rtt = sim::Time::ms(50);
  cfg.additiveBps = 500e3;  // climb fast so we overflow within the test
  AimdController ctl(flow, tb.host(2), cfg);
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(10));
  EXPECT_GT(ctl.lossesDetected(), 0u);
  // The sawtooth hovers around the bottleneck, never far above it.
  EXPECT_LT(ctl.currentRateBps(), 1.5 * kBottleneck);
  EXPECT_GT(ctl.currentRateBps(), 0.1 * kBottleneck);
  ctl.stop();
}

TEST_F(AimdFixture, TwoFlowsOscillateAroundFairShare) {
  host::PacedFlow f1(tb.host(0), specFor(0, 200e3), 1);
  host::PacedFlow f2(tb.host(1), specFor(1, 200e3), 2);
  AimdController::Config cfg;
  cfg.rtt = sim::Time::ms(50);
  cfg.additiveBps = 200e3;
  AimdController c1(f1, tb.host(2), cfg);
  AimdController c2(f2, tb.host(3), cfg);
  c1.start(sim::Time::zero());
  c2.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(20));
  // Long-run average of each flow's rate is near C/2 (AIMD fairness).
  const double m1 = c1.rateSeries().meanOver(sim::Time::sec(10),
                                             sim::Time::sec(20));
  const double m2 = c2.rateSeries().meanOver(sim::Time::sec(10),
                                             sim::Time::sec(20));
  EXPECT_NEAR(m1, kBottleneck / 2.0, 0.35 * kBottleneck);
  EXPECT_NEAR(m2, kBottleneck / 2.0, 0.35 * kBottleneck);
  // And neither starves: they split within a factor of ~3.
  EXPECT_LT(std::max(m1, m2) / std::min(m1, m2), 3.0);
  c1.stop();
  c2.stop();
}

TEST_F(AimdFixture, RespectsMinimumRate) {
  host::PacedFlow flow(tb.host(0), specFor(0, 200e3), 1);
  AimdController::Config cfg;
  cfg.rtt = sim::Time::ms(10);
  cfg.minRateBps = 150e3;
  cfg.multiplicativeDecrease = 0.01;  // brutal decrease
  AimdController ctl(flow, tb.host(2), cfg);
  ctl.start(sim::Time::zero());
  // Induce loss artificially: a competing blast flow.
  host::PacedFlow blast(tb.host(1), specFor(1, 50e6), 3);
  blast.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(2));
  EXPECT_GE(ctl.currentRateBps(), 150e3);
  ctl.stop();
  blast.stop();
}

TEST_F(AimdFixture, RateSeriesRecorded) {
  host::PacedFlow flow(tb.host(0), specFor(0, 200e3), 1);
  AimdController ctl(flow, tb.host(2), {});
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(1));
  EXPECT_GE(ctl.rateSeries().size(), 15u);
  ctl.stop();
}

}  // namespace
}  // namespace tpp::apps
