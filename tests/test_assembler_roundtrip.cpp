// Assembler round-trip property: for random VALID programs built through
// the ProgramBuilder API, encode → disassemble → re-assemble → re-encode is
// byte-identical. Program equality (covered by test_fuzz) implies this, but
// the wire bytes are what actually ride the network, so we pin them
// directly: the instruction stream, the initialized packet-memory image,
// and the full framed TPP must all survive a text round trip bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <variant>
#include <vector>

#include "src/core/assembler.hpp"
#include "src/core/program.hpp"
#include "src/net/mac_address.hpp"
#include "src/sim/random.hpp"

namespace tpp::core {
namespace {

Program randomBuiltProgram(sim::Rng& rng) {
  ProgramBuilder b;
  const auto instrs = rng.uniformInt(0, 16);
  for (std::int64_t i = 0; i < instrs; ++i) {
    const auto addr = static_cast<std::uint16_t>(rng.uniformInt(0, 0xffff));
    const auto off = static_cast<std::uint8_t>(rng.uniformInt(0, 24));
    const auto imm = static_cast<std::uint32_t>(
        rng.uniformInt(0, std::numeric_limits<std::int32_t>::max()));
    switch (rng.uniformInt(0, 9)) {
      case 0: b.push(addr); break;
      case 1: b.pop(addr); break;
      case 2: b.load(addr, off); break;
      case 3: b.store(addr, off); break;
      case 4: b.storeImm(addr, imm); break;
      case 5: b.cstore(addr, imm, imm ^ 0x5a5a5a5a); break;
      case 6: b.cexec(addr, imm, imm & 0x00ff00ff); break;
      case 7: b.add(addr, off); break;
      case 8: b.sub(addr, off); break;
      default: rng.bernoulli(0.5) ? b.minOp(addr, off) : b.maxOp(addr, off);
    }
  }
  b.task(static_cast<std::uint16_t>(rng.uniformInt(0, 7)));
  if (rng.bernoulli(0.3)) {
    b.mode(AddressingMode::Hop);
    b.perHop(static_cast<std::uint8_t>(rng.uniformInt(1, 6)));
  }
  b.reserve(static_cast<std::uint8_t>(rng.uniformInt(0, 48)));
  const auto program = b.build();
  EXPECT_TRUE(program.has_value());
  return *program;
}

class AssemblerRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssemblerRoundTrip, ReencodeIsByteIdentical) {
  sim::Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const auto program = randomBuiltProgram(rng);
    const auto text = disassemble(program);
    auto result = assemble(text);
    ASSERT_TRUE(std::holds_alternative<Program>(result))
        << text << "\nerror: " << std::get<AssemblyError>(result).message;
    const auto& reassembled = std::get<Program>(result);

    // Instruction stream: identical 4-byte encodings, word for word.
    ASSERT_EQ(reassembled.instructions.size(), program.instructions.size())
        << text;
    for (std::size_t i = 0; i < program.instructions.size(); ++i) {
      EXPECT_EQ(reassembled.instructions[i].encode(),
                program.instructions[i].encode())
          << text << "\ninstruction " << i;
    }
    // Initialized packet-memory image (immediates) byte-identical.
    EXPECT_EQ(reassembled.initialPmem, program.initialPmem) << text;

    // Full framed TPP: header + instructions + pmem, bit for bit.
    const auto dst = net::MacAddress::fromIndex(1);
    const auto src = net::MacAddress::fromIndex(2);
    const auto a = buildTppFrame(dst, src, program);
    const auto b = buildTppFrame(dst, src, reassembled);
    EXPECT_EQ(a->bytes(), b->bytes()) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerRoundTrip,
                         ::testing::Values(17u, 34u, 51u, 68u, 85u));

}  // namespace
}  // namespace tpp::core
