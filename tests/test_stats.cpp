#include "src/sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tpp::sim {
namespace {

TEST(Ewma, FirstSamplePrimes) {
  Ewma e(0.1);
  EXPECT_FALSE(e.primed());
  e.add(10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, Smooths) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-9);
}

TEST(Ewma, ResetClears) {
  Ewma e(0.2);
  e.add(5.0);
  e.reset();
  EXPECT_FALSE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(WindowedRate, ZeroBeforeFirstWindowCompletes) {
  WindowedRate r(Time::ms(10));
  r.add(Time::ms(1), 1000);
  EXPECT_DOUBLE_EQ(r.rateBps(Time::ms(5)), 0.0);
}

TEST(WindowedRate, ReportsCompletedWindow) {
  WindowedRate r(Time::ms(10));
  r.add(Time::ms(1), 1000);
  r.add(Time::ms(5), 1000);
  // 2000 bytes over 10 ms = 1.6 Mb/s.
  EXPECT_DOUBLE_EQ(r.rateBps(Time::ms(12)), 1.6e6);
}

TEST(WindowedRate, IdleWindowsDecayToZero) {
  WindowedRate r(Time::ms(10));
  r.add(Time::ms(1), 1000);
  EXPECT_GT(r.rateBps(Time::ms(12)), 0.0);
  // Two full idle windows later the estimate must read zero.
  EXPECT_DOUBLE_EQ(r.rateBps(Time::ms(35)), 0.0);
}

TEST(WindowedRate, SteadyTrafficSteadyRate) {
  WindowedRate r(Time::ms(10));
  // 1250 bytes per ms = 10 Mb/s.
  for (int t = 0; t < 100; ++t) r.add(Time::ms(t), 1250);
  EXPECT_NEAR(r.rateBps(Time::ms(100)), 10e6, 1e4);
}

TEST(Summary, Moments) {
  Summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0, 100, 10);
  for (int i = 0; i < 100; ++i) h.add(i);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 10.0);
}

TEST(Histogram, OverflowGoesToLastBin) {
  Histogram h(0, 10, 10);
  h.add(1e9);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 10.0);
}

TEST(Histogram, UnderflowClampsToFirstBin) {
  Histogram h(10, 20, 10);
  h.add(-5.0);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(0, 10, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(TimeSeries, StoresPoints) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.add(Time::ms(1), 10.0);
  ts.add(Time::ms(2), 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.points()[1].second, 20.0);
}

TEST(TimeSeries, MeanOverWindow) {
  TimeSeries ts;
  for (int t = 0; t < 10; ++t) ts.add(Time::ms(t), t);
  // [3ms, 6ms) covers samples 3,4,5.
  EXPECT_DOUBLE_EQ(ts.meanOver(Time::ms(3), Time::ms(6)), 4.0);
  EXPECT_DOUBLE_EQ(ts.meanOver(Time::sec(1), Time::sec(2)), 0.0);
}

TEST(TimeSeries, CsvFormat) {
  TimeSeries ts;
  ts.add(Time::ms(1500), 2.5);
  EXPECT_EQ(ts.toCsv(), "1.5,2.5\n");
}

}  // namespace
}  // namespace tpp::sim
