#include "src/host/prober.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/memory_map.hpp"
#include "src/host/topology.hpp"
#include "src/host/telemetry.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/trace.hpp"

namespace tpp::host {
namespace {

TEST(ReliableProberTagging, SeqRidesAfterImmediates) {
  core::ProgramBuilder b;
  b.cexec(core::addr::SwitchId, 0xffffffff, 7);  // two immediate words
  b.push(core::addr::QueueBytes);
  b.reserve(4);
  const auto p = *b.build();
  ASSERT_EQ(p.initialSp, 2 * core::kWordSize);
  EXPECT_EQ(ReliableProber::seqWordIndex(p), 2u);

  const auto t = ReliableProber::tagged(p, 0xabcd1234u);
  ASSERT_GE(t.initialPmem.size(), 3u);
  EXPECT_EQ(t.initialPmem[0], p.initialPmem[0]);  // immediates untouched
  EXPECT_EQ(t.initialPmem[1], p.initialPmem[1]);
  EXPECT_EQ(t.initialPmem[2], 0xabcd1234u);       // seq appended after them
  EXPECT_EQ(t.pmemWords, p.pmemWords + 1);
  EXPECT_EQ(t.initialSp, p.initialSp + core::kWordSize);
  EXPECT_EQ(t.instructions, p.instructions);
}

TEST(ReliableProberTagging, NoImmediatesMeansSeqAtWordZero) {
  core::ProgramBuilder b;
  b.push(core::addr::SwitchId);
  b.reserve(4);
  const auto p = *b.build();
  const auto t = ReliableProber::tagged(p, 55);
  EXPECT_EQ(ReliableProber::seqWordIndex(p), 0u);
  ASSERT_GE(t.initialPmem.size(), 1u);
  EXPECT_EQ(t.initialPmem[0], 55u);
  // Hop records then start one word in — the tag is a hole the switches
  // never touch.
}

struct ProberFixture : public ::testing::Test {
  Testbed tb;
  core::Program program;

  void SetUp() override {
    buildChain(tb, 1, LinkParams{1'000'000'000, sim::Time::us(5)});
    core::ProgramBuilder b;
    b.push(core::addr::SwitchId);
    b.push(core::addr::QueueBytes);
    b.reserve(8);
    program = *b.build();
  }

  ReliableProber::Config cfg(sim::Time timeout, unsigned retries) {
    ReliableProber::Config c;
    c.dstMac = tb.host(1).mac();
    c.dstIp = tb.host(1).ip();
    c.timeout = timeout;
    c.maxBackoff = timeout * 8;
    c.maxRetries = retries;
    return c;
  }
};

TEST_F(ProberFixture, EchoDeliversResultExactlyOnce) {
  ReliableProber prober(tb.host(0), cfg(sim::Time::ms(10), 3));
  int results = 0;
  std::uint32_t lastSeq = 0;
  const auto seq = prober.send(program,
                               [&](const core::ExecutedTpp&) { ++results; });
  lastSeq = seq;
  tb.sim().run(sim::Time::ms(100));
  EXPECT_EQ(results, 1);
  EXPECT_EQ(lastSeq, 1u);  // firstSeq default
  EXPECT_EQ(prober.outstanding(), 0u);
  EXPECT_EQ(prober.retransmits(), 0u);
  EXPECT_EQ(prober.losses(), 0u);
}

TEST_F(ProberFixture, RetransmitRecoversFromOneDrop) {
  // Take the host0->sw0 wire down across the first transmission only; the
  // retransmit after `timeout` goes through.
  sim::FaultInjector inj(tb.sim(), 9);
  auto& fault = inj.link("h0->sw0");
  tb.linkAt(0).aToB().setFaultState(&fault);
  fault.setDown(true);
  inj.at(sim::Time::us(500), [&] { fault.setDown(false); });

  ReliableProber prober(tb.host(0), cfg(sim::Time::ms(1), 3));
  int results = 0;
  prober.send(program, [&](const core::ExecutedTpp&) { ++results; });
  tb.sim().run(sim::Time::ms(100));
  EXPECT_EQ(results, 1);
  EXPECT_EQ(prober.retransmits(), 1u);
  EXPECT_EQ(prober.losses(), 0u);
  EXPECT_EQ(fault.downDrops(), 1u);
}

TEST_F(ProberFixture, AllCopiesLostReportsLoss) {
  sim::FaultInjector inj(tb.sim(), 10);
  auto& fault = inj.link("h0->sw0", {1.0, 0.0});  // drop everything
  tb.linkAt(0).aToB().setFaultState(&fault);

  ReliableProber prober(tb.host(0), cfg(sim::Time::ms(1), 2));
  int results = 0;
  std::vector<std::uint32_t> lost;
  prober.send(program, [&](const core::ExecutedTpp&) { ++results; },
              [&](std::uint32_t seq) { lost.push_back(seq); });
  tb.sim().run(sim::Time::sec(1));
  EXPECT_EQ(results, 0);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], 1u);
  EXPECT_EQ(prober.losses(), 1u);
  EXPECT_EQ(prober.retransmits(), 2u);  // both retries spent
  EXPECT_EQ(prober.outstanding(), 0u);
}

TEST_F(ProberFixture, LateEchoOfRetransmittedProbeIsSuppressed) {
  // Timeout shorter than the RTT: the original echo is still in flight
  // when the retransmit fires, so both copies come back. The first echo
  // completes the probe; the second must count as a duplicate, not a
  // second result.
  ReliableProber prober(tb.host(0), cfg(sim::Time::us(10), 3));
  int results = 0;
  prober.send(program, [&](const core::ExecutedTpp&) { ++results; });
  tb.sim().run(sim::Time::ms(100));
  EXPECT_EQ(results, 1);
  EXPECT_GE(prober.retransmits(), 1u);
  EXPECT_GE(prober.duplicates(), 1u);
  EXPECT_EQ(prober.losses(), 0u);
  EXPECT_EQ(prober.outstanding(), 0u);
}

TEST_F(ProberFixture, LateEchoAfterLossIsSalvaged) {
  // Give-up time far below the RTT and no retries: the prober declares a
  // loss while the echo is still in flight. The echo must then still
  // deliver the result — a congested network inflates RTT exactly when
  // the feedback matters most.
  ReliableProber prober(tb.host(0), cfg(sim::Time::us(1), 0));
  int results = 0;
  std::vector<std::uint32_t> lost;
  prober.send(program, [&](const core::ExecutedTpp&) { ++results; },
              [&](std::uint32_t seq) { lost.push_back(seq); });
  tb.sim().run(sim::Time::ms(100));
  ASSERT_EQ(lost.size(), 1u);  // the loss path fired first...
  EXPECT_EQ(results, 1);       // ...and the late echo was salvaged anyway
  EXPECT_EQ(prober.losses(), 1u);
  EXPECT_EQ(prober.lateResults(), 1u);
  EXPECT_EQ(prober.duplicates(), 0u);
  EXPECT_EQ(prober.outstanding(), 0u);
}

TEST_F(ProberFixture, RetransmitBackoffDoublesToCapThenHolds) {
  // Black-holed wire with timeout 1 ms and a 4 ms backoff cap: the gaps
  // between successive retransmissions must read 2, 4, 4, 4 ms — one
  // doubling, then pinned at the cap. Verified from the ProbeRetransmit
  // trace timestamps, not from counters, so a silently-wrong schedule
  // (e.g. unbounded doubling) can't pass.
  sim::Tracer tracer(1u << 12);
  armTracing(tb, tracer);
  sim::FaultInjector inj(tb.sim(), 4);
  auto& hole = inj.link("hole", {1.0, 0.0});
  tb.linkAt(0).aToB().setFaultState(&hole);

  auto c = cfg(sim::Time::ms(1), 5);
  c.maxBackoff = sim::Time::ms(4);
  ReliableProber prober(tb.host(0), c);
  int losses = 0;
  prober.send(program, [](const core::ExecutedTpp&) {},
              [&](std::uint32_t) { ++losses; });
  tb.sim().run(sim::Time::sec(1));

  EXPECT_EQ(prober.retransmits(), 5u);
  EXPECT_EQ(losses, 1);
  if (sim::kTraceCompiledIn) {
    const auto decoded = sim::decodeTrace(tracer.serialize());
    ASSERT_TRUE(decoded.ok);
    std::vector<std::int64_t> at;
    for (const auto& r : decoded.records) {
      if (r.kindOf() == sim::TraceKind::ProbeRetransmit)
        at.push_back(r.tsNanos);
    }
    ASSERT_EQ(at.size(), 5u);
    ASSERT_EQ(at[1] - at[0], sim::Time::ms(2).nanos());
    for (std::size_t i = 2; i < at.size(); ++i) {
      EXPECT_EQ(at[i] - at[i - 1], sim::Time::ms(4).nanos());
    }
  }
}

TEST_F(ProberFixture, LateEchoAfterRetriesExhaustedIsSalvageNotDuplicate) {
  // Every retry spent and the loss declared while all three copies (the
  // original and two retransmissions) are still in flight. The first echo
  // to land must be salvaged as the probe's (late) result; only the
  // remaining copies count as duplicates.
  ReliableProber prober(tb.host(0), cfg(sim::Time::us(1), 2));
  int results = 0;
  std::vector<std::uint32_t> lost;
  prober.send(program, [&](const core::ExecutedTpp&) { ++results; },
              [&](std::uint32_t seq) { lost.push_back(seq); });
  tb.sim().run(sim::Time::ms(100));

  ASSERT_EQ(lost.size(), 1u);  // loss reported before any echo landed
  EXPECT_EQ(results, 1);       // ...then the first echo still delivered
  EXPECT_EQ(prober.retransmits(), 2u);
  EXPECT_EQ(prober.losses(), 1u);
  EXPECT_EQ(prober.lateResults(), 1u);
  EXPECT_EQ(prober.duplicates(), 2u);  // the other two copies, not three
  EXPECT_EQ(prober.outstanding(), 0u);
}

TEST_F(ProberFixture, ConcurrentProbesAreDisambiguatedBySeq) {
  ReliableProber prober(tb.host(0), cfg(sim::Time::ms(10), 3));
  std::vector<std::uint32_t> order;
  for (int i = 0; i < 5; ++i) {
    prober.send(program, [&, i](const core::ExecutedTpp& tpp) {
      // Each echo carries its own seq at the tag word.
      order.push_back(tpp.pmem[ReliableProber::seqWordIndex(program)]);
      (void)i;
    });
  }
  tb.sim().run(sim::Time::ms(100));
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(prober.probesSent(), 5u);
  EXPECT_EQ(prober.outstanding(), 0u);
}

}  // namespace
}  // namespace tpp::host
