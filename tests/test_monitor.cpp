// In-switch monitoring subsystem (DESIGN.md §14): count-min sketch
// accuracy against exact ground truth, the host-side readers and the
// CSTORE epoch-reset protocol, Dapper-style flow diagnosis, spin-bit RTT
// tracking, and the dynamic SRAM oracle's cross-check of the full
// monitoring deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/apps/deployment.hpp"
#include "src/apps/task_ids.hpp"
#include "src/core/interference.hpp"
#include "src/host/collector.hpp"
#include "src/host/flow.hpp"
#include "src/host/tcp.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"
#include "src/monitor/dapper.hpp"
#include "src/monitor/ground_truth.hpp"
#include "src/monitor/sketch.hpp"
#include "src/monitor/spin.hpp"

namespace tpp::monitor {
namespace {

using host::Testbed;

host::LinkParams fastLink() {
  return host::LinkParams{10'000'000'000ull, sim::Time::us(5)};
}

// ------------------------------------------------------------- geometry

TEST(CountMinSketch, GeometryAndBounds) {
  const CountMinSketch s({.taskId = 8, .rows = 4, .width = 64});
  EXPECT_EQ(s.words(), 2 + 4 * 64);
  EXPECT_NEAR(s.epsilon(), std::exp(1.0) / 64.0, 1e-12);
  EXPECT_NEAR(s.delta(), std::exp(-4.0), 1e-12);
}

// ------------------------------------------------- accuracy vs truth

// One switch, the resident update hook, and a mix of heavy and mouse UDP
// flows. The sketch must never underestimate, must stay inside the
// (eps, delta) overestimate bound, and must report every true heavy
// hitter at 2x the threshold (recall 1.0 follows from the no-
// underestimate guarantee — this asserts the deployed artifact actually
// delivers it).
struct SketchRig : public ::testing::Test {
  static constexpr std::uint64_t kHhThreshold = 32;
  Testbed tb;
  CountMinSketch sketch{{.taskId = apps::kTaskSketch, .rows = 4,
                         .width = 16}};
  GroundTruthCounter truth;
  std::uint16_t base = 0;

  void SetUp() override {
    buildChain(tb, 1, fastLink());
    asic::Switch& sw = tb.sw(0);
    std::string whyNot;
    const auto grant = sw.sramAllocator().allocate(
        apps::kTaskSketch, sketch.words(), core::StatNamespace::Sram,
        &whyNot);
    ASSERT_TRUE(grant) << whyNot;
    base = grant->baseAddress();
    ASSERT_TRUE(sw.scratchWrite(
        static_cast<std::uint16_t>(base + CountMinSketch::kThresholdWord),
        static_cast<std::uint32_t>(kHhThreshold)));
    sw.installHook(sketch.updateHook(base));
    sw.setEgressInterceptor(&truth);
  }

  // `packetsPerFlow[f]` UDP packets from host 0 to host 1, each flow on
  // its own source port (distinct 5-tuple, distinct flow hash).
  void offer(const std::vector<std::uint32_t>& packetsPerFlow) {
    std::vector<std::unique_ptr<host::PacedFlow>> flows;
    for (std::size_t f = 0; f < packetsPerFlow.size(); ++f) {
      host::FlowSpec spec;
      spec.dstMac = tb.host(1).mac();
      spec.dstIp = tb.host(1).ip();
      spec.srcPort = static_cast<std::uint16_t>(21000 + f);
      spec.dstPort = 22000;
      spec.payloadBytes = 1000;
      spec.rateBps = 40e6;
      spec.totalBytes = std::uint64_t{1000} * packetsPerFlow[f];
      flows.push_back(
          std::make_unique<host::PacedFlow>(tb.host(0), spec, f));
      flows.back()->start(sim::Time::zero());
    }
    tb.sim().run();
    for (const auto& fl : flows) EXPECT_TRUE(fl->finished());
  }

  CountMinSketch::ReadWordFn readWord() {
    return [this](std::uint16_t address) {
      return tb.sw(0).scratchRead(address);
    };
  }
};

TEST_F(SketchRig, HoldsEpsDeltaBoundAndHeavyHitterRecall) {
  std::vector<std::uint32_t> plan;
  for (int f = 0; f < 4; ++f) plan.push_back(80);  // heavy: >= 2x threshold
  for (int f = 0; f < 56; ++f) {
    plan.push_back(1 + static_cast<std::uint32_t>(f % 9));  // mice
  }
  offer(plan);

  ASSERT_EQ(truth.flows().size(), plan.size());
  // Every eligible packet ran the (single, always-on, stride-1) hook.
  EXPECT_EQ(truth.eligiblePackets(), tb.sw(0).hookExecutions());

  const double epsN =
      sketch.epsilon() * static_cast<double>(truth.eligiblePackets());
  std::uint64_t checks = 0, underestimates = 0, epsViolations = 0;
  std::uint64_t hhTrue = 0, hhMissed = 0;
  for (const auto& [hash, counts] : truth.flows()) {
    const auto est = sketch.estimate(readWord(), base, hash);
    ASSERT_TRUE(est) << "counter read failed for flow " << hash;
    ++checks;
    if (*est < counts.packets) ++underestimates;
    if (static_cast<double>(*est) >
        static_cast<double>(counts.packets) + epsN) {
      ++epsViolations;
    }
    if (counts.packets >= 2 * kHhThreshold) {
      ++hhTrue;
      if (*est < kHhThreshold) ++hhMissed;
    }
  }
  EXPECT_EQ(checks, plan.size());
  EXPECT_EQ(underestimates, 0u);  // count-min never undershoots at stride 1
  const auto allowed = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(3.0 * sketch.delta() * static_cast<double>(checks))));
  EXPECT_LE(epsViolations, allowed);
  EXPECT_EQ(hhTrue, 4u);
  EXPECT_EQ(hhMissed, 0u) << "heavy-hitter recall below 1.0";
}

TEST_F(SketchRig, ReadProbeMatchesControlPlaneEstimate) {
  offer({50, 7, 3});
  // Pick the heavy flow's hash from the ground truth.
  std::uint64_t heavy = 0;
  for (const auto& [hash, counts] : truth.flows()) {
    if (counts.packets == 50) heavy = hash;
  }
  ASSERT_NE(heavy, 0u);

  // The wire reader: a probe that CEXEC-pins to the switch and pushes
  // [epoch, row0..row3] for this flow. Switch ids are 1-based.
  const auto prog = sketch.readProbeProgram(base, /*switchId=*/1, heavy);
  std::optional<core::ExecutedTpp> result;
  tb.host(0).onTppResult(
      [&](const core::ExecutedTpp& t) { result = t; });
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), prog);
  tb.sim().run();
  ASSERT_TRUE(result);

  // CEXEC burned 2 immediate words; one hop pushed 1 + rows values.
  const auto split = host::splitStackRecordsChecked(
      *result, 1 + sketch.config().rows, /*initialSpWords=*/2);
  EXPECT_FALSE(split.truncated);
  ASSERT_TRUE(split.complete(1));
  const auto& rec = split.records[0];
  const std::uint32_t epoch = rec[0];
  std::uint32_t minRow = rec[1];
  for (std::size_t r = 2; r < rec.size(); ++r) {
    minRow = std::min(minRow, rec[r]);
  }
  EXPECT_EQ(epoch, *tb.sw(0).scratchRead(
                       static_cast<std::uint16_t>(
                           base + CountMinSketch::kEpochWord)));
  const auto est = sketch.estimate(readWord(), base, heavy);
  ASSERT_TRUE(est);
  EXPECT_EQ(minRow, *est);
  EXPECT_GE(minRow, 50u);
}

TEST_F(SketchRig, EpochResetProtocolBumpsAndZeroes) {
  offer({20});
  std::uint64_t flow = truth.flows().begin()->first;
  const std::uint16_t counter0 = sketch.counterAddress(base, 0, flow);
  const std::uint32_t observed = *tb.sw(0).scratchRead(counter0);
  ASSERT_GE(observed, 20u);

  // A stale expected epoch must not take (CSTORE mismatch)...
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(),
                       sketch.epochBumpProgram(base, 1, /*expected=*/7));
  tb.sim().run();
  const std::uint16_t epochAddr =
      static_cast<std::uint16_t>(base + CountMinSketch::kEpochWord);
  EXPECT_EQ(*tb.sw(0).scratchRead(epochAddr), 0u);

  // ...the current one does, and the observed-value reset zeroes the
  // counter exactly once (a second identical reset misses its CSTORE).
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(),
                       sketch.epochBumpProgram(base, 1, /*expected=*/0));
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(),
                       sketch.counterResetProgram(counter0, 1, observed));
  tb.sim().run();
  EXPECT_EQ(*tb.sw(0).scratchRead(epochAddr), 1u);
  EXPECT_EQ(*tb.sw(0).scratchRead(counter0), 0u);
}

// ------------------------------------------------------------- dapper

TEST(FlowDiagnoser, ClassifiesKnownCauses) {
  const FlowDiagnoser d;  // default knobs
  using V = FlowDiagnoser::Verdict;
  FlowDiagnoser::FlowRecord r;

  r.pkts = 3;
  EXPECT_EQ(d.classify(r), V::Unknown);

  // Advertised window pinched at/below the floor -> receiver-limited.
  r = {.pkts = 100, .bytes = 100'000, .maxGapNs = 10'000,
       .sumGapNs = 990'000, .minWndBytes = 2048};
  EXPECT_EQ(d.classify(r), V::ReceiverLimited);

  // One retransmission-shaped gap dominating the mean -> network-limited.
  r = {.pkts = 100, .bytes = 100'000, .maxGapNs = 200'000'000,
       .sumGapNs = 400'000'000, .minWndBytes = 65'000};
  EXPECT_EQ(d.classify(r), V::NetworkLimited);

  // Arrivals paced far below line rate -> sender-limited.
  r = {.pkts = 100, .bytes = 100'000, .maxGapNs = 30'000'000,
       .sumGapNs = 99 * 20'000'000u, .minWndBytes = 65'000};
  EXPECT_EQ(d.classify(r), V::SenderLimited);

  // Tight, even arrivals with an open window -> healthy.
  r = {.pkts = 100, .bytes = 100'000, .maxGapNs = 50'000,
       .sumGapNs = 990'000, .minWndBytes = 65'000};
  EXPECT_EQ(d.classify(r), V::Healthy);
}

TEST(FlowDiagnoser, VerdictNamesAreStable) {
  using V = FlowDiagnoser::Verdict;
  EXPECT_EQ(verdictName(V::Unknown), "unknown");
  EXPECT_EQ(verdictName(V::ReceiverLimited), "receiver-limited");
  EXPECT_EQ(verdictName(V::NetworkLimited), "network-limited");
  EXPECT_EQ(verdictName(V::SenderLimited), "sender-limited");
  EXPECT_EQ(verdictName(V::Healthy), "healthy");
}

// End-to-end: the resident init/update hook pair records a real TCP
// transfer's segments, and the host-side reader recovers a classifiable
// record keyed by the data direction's flow hash.
TEST(FlowDiagnoser, RecordsLiveTcpFlow) {
  Testbed tb;
  buildChain(tb, 1, fastLink());
  asic::Switch& sw = tb.sw(0);
  const FlowDiagnoser dapper({.taskId = apps::kTaskDapper, .slots = 32});
  std::string whyNot;
  const auto grant = sw.sramAllocator().allocate(
      apps::kTaskDapper, dapper.words(), core::StatNamespace::Sram,
      &whyNot);
  ASSERT_TRUE(grant) << whyNot;
  const std::uint16_t base = grant->baseAddress();
  sw.installHook(dapper.initHook(base));
  sw.installHook(dapper.updateHook(base));
  GroundTruthCounter truth;
  sw.setEgressInterceptor(&truth);

  host::TcpConnection::Config cfg;
  host::TcpListener listener(tb.host(1), 23000, cfg);
  host::TcpConnection conn(tb.host(0), cfg);
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000,
               200 * 1024);
  tb.sim().run(sim::Time::ms(100));
  ASSERT_EQ(conn.bytesAcked(), 200u * 1024);

  // The data direction is the byte-heavy one of the two the switch saw.
  ASSERT_EQ(truth.flows().size(), 2u);
  std::uint64_t dataHash = 0, dataBytes = 0, dataPkts = 0;
  for (const auto& [hash, counts] : truth.flows()) {
    if (counts.bytes > dataBytes) {
      dataHash = hash;
      dataBytes = counts.bytes;
      dataPkts = counts.packets;
    }
  }

  const auto readWord = [&sw](std::uint16_t address) {
    return sw.scratchRead(address);
  };
  const auto rec = dapper.record(readWord, base, dataHash);
  ASSERT_TRUE(rec) << "slot never claimed or lost to a collision";
  EXPECT_GE(rec->pkts, dapper.config().minPackets);
  EXPECT_LE(rec->pkts, dataPkts);
  EXPECT_GT(rec->bytes, 0u);
  EXPECT_GT(rec->minWndBytes, 0u);
  EXPECT_NE(dapper.classify(*rec), FlowDiagnoser::Verdict::Unknown);
}

// --------------------------------------------------------- spin-bit RTT

TEST(SpinRttMonitor, TracksRttOfLiveTcpFlow) {
  Testbed tb;
  // 1 Gb/s, 50 us per link: RTT ~= 4 x 50 us propagation + serialization.
  buildChain(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(50)});
  asic::Switch& sw = tb.sw(0);
  const SpinRttMonitor spin({.taskId = apps::kTaskSpinRtt, .slots = 32});
  std::string whyNot;
  const auto grant = sw.sramAllocator().allocate(
      apps::kTaskSpinRtt, spin.words(), core::StatNamespace::Sram, &whyNot);
  ASSERT_TRUE(grant) << whyNot;
  const std::uint16_t base = grant->baseAddress();
  sw.installHook(spin.hook(base));
  GroundTruthCounter truth;
  sw.setEgressInterceptor(&truth);

  host::TcpConnection::Config cfg;
  host::TcpListener listener(tb.host(1), 23000, cfg);
  host::TcpConnection conn(tb.host(0), cfg);
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000,
               512 * 1024);
  // Sample mid-transfer: the last flip-to-flip interval then reflects the
  // steady-state round trip, not the FIN-side tail of the stream.
  tb.sim().run(sim::Time::ms(3));
  ASSERT_GT(conn.bytesAcked(), 0u);
  ASSERT_LT(conn.bytesAcked(), 512u * 1024);

  std::uint64_t dataHash = 0, dataBytes = 0;
  for (const auto& [hash, counts] : truth.flows()) {
    if (counts.bytes > dataBytes) {
      dataHash = hash;
      dataBytes = counts.bytes;
    }
  }
  const auto readWord = [&sw](std::uint16_t address) {
    return sw.scratchRead(address);
  };
  const auto sample = spin.sample(readWord, base, dataHash);
  tb.sim().run(sim::Time::ms(200));
  ASSERT_EQ(conn.bytesAcked(), 512u * 1024);
  ASSERT_TRUE(sample) << "spin bit never flipped enough to estimate";
  EXPECT_GE(sample->flips, SpinRttMonitor::kMinFlips);
  // The estimate is one full round trip: at least the 200 us propagation
  // floor, and within a small factor of it on this uncongested path.
  EXPECT_GE(sample->rttNs, 200'000u);
  EXPECT_LE(sample->rttNs, 2'000'000u);
}

// ------------------------------------- static/dynamic oracle cross-check

// The full monitoring deployment (sketch + dapper + spin resident hooks)
// under live traffic: the dynamic SRAM race oracle must observe zero
// conflicts the static interference analysis did not predict — and since
// the static report certifies the monitor tasks conflict-free, zero
// conflicts at all.
TEST(MonitorDeployment, OracleSeesNoStaticDynamicDivergence) {
  Testbed tb;
  buildChain(tb, 1, fastLink());
  asic::Switch& sw = tb.sw(0);

  const CountMinSketch sketch({.taskId = apps::kTaskSketch});
  const FlowDiagnoser dapper({.taskId = apps::kTaskDapper});
  const SpinRttMonitor spin({.taskId = apps::kTaskSpinRtt});
  std::uint16_t bases[3] = {};
  const std::uint16_t words[3] = {sketch.words(), dapper.words(),
                                  spin.words()};
  const std::uint16_t tasks[3] = {apps::kTaskSketch, apps::kTaskDapper,
                                  apps::kTaskSpinRtt};
  for (int i = 0; i < 3; ++i) {
    std::string whyNot;
    const auto grant = sw.sramAllocator().allocate(
        tasks[i], words[i], core::StatNamespace::Sram, &whyNot);
    ASSERT_TRUE(grant) << whyNot;
    bases[i] = grant->baseAddress();
  }
  sw.installHook(sketch.updateHook(bases[0]));
  sw.installHook(dapper.initHook(bases[1]));
  sw.installHook(dapper.updateHook(bases[1]));
  sw.installHook(spin.hook(bases[2]));

  // Static verdict for this exact layout (token word parked clear of the
  // monitor grants — no limiter runs here).
  const auto dep = apps::shippedDeployment(
      /*tokenAddress=*/static_cast<std::uint16_t>(core::kSramBase + 0x700),
      /*maxHops=*/8, bases[0], bases[1], bases[2]);
  const auto report = core::analyzeInterference(dep.tasks, dep.options);
  EXPECT_TRUE(report.ok()) << (report.findings.empty()
                                   ? ""
                                   : report.findings.front().message);

  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);

  host::TcpConnection::Config cfg;
  host::TcpListener listener(tb.host(1), 23000, cfg);
  host::TcpConnection conn(tb.host(0), cfg);
  conn.connect(tb.host(1).mac(), tb.host(1).ip(), 23000, 30000, 96 * 1024);
  host::FlowSpec udp;
  udp.dstMac = tb.host(1).mac();
  udp.dstIp = tb.host(1).ip();
  udp.srcPort = 25000;
  udp.totalBytes = 64 * 1024;
  udp.rateBps = 100e6;
  host::PacedFlow cross(tb.host(0), udp, 7);
  cross.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(100));
  ASSERT_EQ(conn.bytesAcked(), 96u * 1024);

  for (std::size_t i = 0; i < oracles.size(); ++i) oracles.at(i).flush();
  EXPECT_GT(oracles.accesses(), 0u);
  EXPECT_TRUE(oracles.conflicts().empty());
  EXPECT_TRUE(oracles.divergences(report, dep.tasks).empty());
}

}  // namespace
}  // namespace tpp::monitor
