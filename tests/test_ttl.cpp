// TTL handling on routed packets: decrement per L3 hop, drop on expiry.
#include <gtest/gtest.h>

#include "src/host/topology.hpp"
#include "src/net/byte_io.hpp"
#include "src/net/ipv4.hpp"

namespace tpp::asic {
namespace {

using host::Testbed;

// Rewrites the TTL of a host-built frame (the host stack always sends 64).
net::PacketPtr frameWithTtl(host::Host& from, host::Host& to,
                            std::uint8_t ttl) {
  auto packet = from.makeUdpFrame(to.mac(), to.ip(), 9000, 9000, {});
  auto ip = packet->span().subspan(net::kEthernetHeaderSize);
  ip[8] = ttl;
  net::putBe16(ip, 10, 0);
  net::putBe16(ip, 10, net::internetChecksum(ip.first(net::kIpv4HeaderSize)));
  return packet;
}

struct TtlFixture : public ::testing::Test {
  Testbed tb;
  int delivered = 0;
  std::uint8_t deliveredTtl = 0;

  void SetUp() override {
    buildChain(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(1)});
    tb.host(1).bindUdp(9000, [this](const host::UdpDatagram& d) {
      ++delivered;
      const auto ip = net::Ipv4Header::parse(
          d.packet->span().subspan(net::kEthernetHeaderSize));
      deliveredTtl = ip ? ip->ttl : 0;
    });
  }
};

TEST_F(TtlFixture, DecrementedOncePerRoutedHop) {
  tb.host(0).transmit(frameWithTtl(tb.host(0), tb.host(1), 64));
  tb.sim().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(deliveredTtl, 64 - 3);  // three L3 hops
}

TEST_F(TtlFixture, ChecksumStaysValidAfterRewrite) {
  // Delivery itself proves it: Ipv4Header::parse rejects bad checksums and
  // the host would not deliver the datagram.
  tb.host(0).transmit(frameWithTtl(tb.host(0), tb.host(1), 10));
  tb.sim().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(deliveredTtl, 7);
}

TEST_F(TtlFixture, ExactlyEnoughTtlSurvives) {
  tb.host(0).transmit(frameWithTtl(tb.host(0), tb.host(1), 4));
  tb.sim().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(deliveredTtl, 1);
}

TEST_F(TtlFixture, ExpiringPacketIsDropped) {
  tb.host(0).transmit(frameWithTtl(tb.host(0), tb.host(1), 2));
  tb.sim().run();
  EXPECT_EQ(delivered, 0);
  // sw0 decrements 2 -> 1; sw1 sees an expiring packet and drops it.
  EXPECT_EQ(tb.sw(1).stats().ttlExpired, 1u);
  EXPECT_EQ(tb.sw(1).stats().totalDrops, 1u);
  EXPECT_EQ(tb.sw(2).stats().totalRxPackets, 0u);
}

TEST_F(TtlFixture, TtlOneDropsAtFirstSwitch) {
  tb.host(0).transmit(frameWithTtl(tb.host(0), tb.host(1), 1));
  tb.sim().run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(tb.sw(0).stats().ttlExpired, 1u);
}

TEST_F(TtlFixture, RoutingLoopIsBounded) {
  // Deliberately miswire: sw0 and sw1 point a victim /32 at each other.
  const auto victim = net::Ipv4Address::fromOctets(10, 9, 9, 9);
  tb.sw(0).l3().add(victim, 32, 1);
  tb.sw(1).l3().add(victim, 32, 0);
  auto packet = tb.host(0).makeUdpFrame(net::MacAddress::fromIndex(99),
                                        victim, 1, 1, {});
  tb.host(0).transmit(std::move(packet));
  tb.sim().run();  // must terminate — that is the property under test
  EXPECT_EQ(tb.sw(0).stats().ttlExpired + tb.sw(1).stats().ttlExpired, 1u);
  // The packet ping-ponged ~64 times, not forever.
  EXPECT_LT(tb.sw(0).stats().totalRxPackets, 40u);
}

TEST(TtlUnit, L2SwitchedFramesAreNotDecremented) {
  // A TCAM-forwarded (non-L3) packet keeps its TTL: only routing
  // decrements.
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(1)});
  TcamKey k;
  k.ipDst = {tb.host(1).ip(), 32};
  tb.sw(0).tcam().add(k, TcamAction{1}, 100);
  int delivered = 0;
  std::uint8_t ttl = 0;
  tb.host(1).bindUdp(9000, [&](const host::UdpDatagram& d) {
    ++delivered;
    const auto ip = net::Ipv4Header::parse(
        d.packet->span().subspan(net::kEthernetHeaderSize));
    ttl = ip ? ip->ttl : 0;
  });
  tb.host(0).sendUdp(tb.host(1).mac(), tb.host(1).ip(), 9000, 9000, {});
  tb.sim().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(ttl, 64);  // untouched
}

}  // namespace
}  // namespace tpp::asic
