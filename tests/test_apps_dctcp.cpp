#include "src/apps/dctcp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/aimd.hpp"
#include "src/host/topology.hpp"

namespace tpp::apps {
namespace {

using host::Testbed;

constexpr std::uint64_t kBottleneck = 10'000'000;
constexpr std::uint64_t kEcnThreshold = 15'000;

struct DctcpFixture : public ::testing::Test {
  Testbed tb;

  void SetUp() override {
    asic::SwitchConfig cfg;
    cfg.bufferPerQueueBytes = 256 * 1024;
    cfg.ecnThresholdBytes = kEcnThreshold;
    buildDumbbell(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{kBottleneck, sim::Time::ms(1)}, cfg);
  }

  host::FlowSpec specFor(std::size_t pair) {
    host::FlowSpec s;
    s.dstMac = tb.host(2 + pair).mac();
    s.dstIp = tb.host(2 + pair).ip();
    s.srcPort = static_cast<std::uint16_t>(28000 + pair);
    s.dstPort = s.srcPort;
    s.rateBps = 200e3;
    return s;
  }
};

TEST_F(DctcpFixture, ClimbsThenHoldsNearCapacity) {
  host::PacedFlow flow(tb.host(0), specFor(0), 1);
  DctcpController::Config cfg;
  cfg.rtt = sim::Time::ms(50);
  cfg.additiveBps = 500e3;
  DctcpController ctl(flow, tb.host(2), cfg);
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(10));
  // Steady rate near C, modulated by marks (not collapsed, not runaway).
  const double mean = ctl.rateSeries().meanOver(sim::Time::sec(5),
                                                sim::Time::sec(10));
  EXPECT_NEAR(mean, static_cast<double>(kBottleneck), 0.25 * kBottleneck);
  EXPECT_GT(ctl.markedSeen(), 0u);
  ctl.stop();
}

TEST_F(DctcpFixture, KeepsQueueNearTheMarkThreshold) {
  host::PacedFlow flow(tb.host(0), specFor(0), 1);
  DctcpController::Config cfg;
  cfg.rtt = sim::Time::ms(50);
  cfg.additiveBps = 500e3;
  DctcpController ctl(flow, tb.host(2), cfg);
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(5));
  const double before = tb.sw(0).queueByteTimeIntegral(2);
  tb.sim().run(sim::Time::sec(10));
  ctl.stop();
  const double avgQueue =
      (tb.sw(0).queueByteTimeIntegral(2) - before) / 5.0;
  // The ECN loop parks the queue in the vicinity of the threshold — far
  // below the 256 KB buffer a loss-based controller would fill.
  EXPECT_LT(avgQueue, 4.0 * kEcnThreshold);
}

TEST_F(DctcpFixture, AlphaTracksCongestion) {
  host::PacedFlow flow(tb.host(0), specFor(0), 1);
  DctcpController ctl(flow, tb.host(2), {});
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(1));
  EXPECT_DOUBLE_EQ(ctl.alpha(), 0.0);  // below capacity: no marks yet
  tb.sim().run(sim::Time::sec(15));
  EXPECT_GT(ctl.alpha(), 0.0);  // saturating: marks arrived
  ctl.stop();
}

TEST_F(DctcpFixture, LowerStandingQueueThanAimd) {
  // Same network, same demand: AIMD fills the buffer to find loss; DCTCP
  // reacts to marks at the threshold.
  const double aimdQueue = [] {
    Testbed tb2;
    asic::SwitchConfig cfg;
    cfg.bufferPerQueueBytes = 256 * 1024;
    cfg.ecnThresholdBytes = kEcnThreshold;
    buildDumbbell(tb2, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{kBottleneck, sim::Time::ms(1)}, cfg);
    host::FlowSpec s;
    s.dstMac = tb2.host(2).mac();
    s.dstIp = tb2.host(2).ip();
    s.srcPort = 28000;
    s.dstPort = 28000;
    s.rateBps = 200e3;
    host::PacedFlow flow(tb2.host(0), s, 1);
    AimdController::Config acfg;
    acfg.rtt = sim::Time::ms(50);
    acfg.additiveBps = 500e3;
    AimdController ctl(flow, tb2.host(2), acfg);
    ctl.start(sim::Time::zero());
    tb2.sim().run(sim::Time::sec(5));
    const double before = tb2.sw(0).queueByteTimeIntegral(2);
    tb2.sim().run(sim::Time::sec(15));
    ctl.stop();
    return (tb2.sw(0).queueByteTimeIntegral(2) - before) / 10.0;
  }();

  host::PacedFlow flow(tb.host(0), specFor(0), 1);
  DctcpController::Config cfg;
  cfg.rtt = sim::Time::ms(50);
  cfg.additiveBps = 500e3;
  DctcpController ctl(flow, tb.host(2), cfg);
  ctl.start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(5));
  const double before = tb.sw(0).queueByteTimeIntegral(2);
  tb.sim().run(sim::Time::sec(15));
  ctl.stop();
  const double dctcpQueue =
      (tb.sw(0).queueByteTimeIntegral(2) - before) / 10.0;

  EXPECT_LT(dctcpQueue, aimdQueue * 0.5)
      << "dctcp=" << dctcpQueue << " aimd=" << aimdQueue;
}

}  // namespace
}  // namespace tpp::apps
