#include "src/core/memory_map.hpp"

#include <gtest/gtest.h>

namespace tpp::core {
namespace {

TEST(MemoryMap, ResolvesPaperMnemonics) {
  const auto& m = MemoryMap::standard();
  // The exact names the paper's example programs use.
  EXPECT_EQ(m.resolve("Switch:SwitchID"), addr::SwitchId);
  EXPECT_EQ(m.resolve("Switch:ID"), addr::SwitchId);
  EXPECT_EQ(m.resolve("Queue:QueueSize"), addr::QueueBytes);
  EXPECT_EQ(m.resolve("Link:QueueSize"), addr::PortQueueBytes);
  EXPECT_EQ(m.resolve("Link:RX-Utilization"), addr::RxUtilization);
  EXPECT_EQ(m.resolve("Link:RCP-RateRegister"), addr::RcpRateRegister);
  EXPECT_EQ(m.resolve("PacketMetadata:MatchedEntryID"), addr::MatchedEntryId);
  EXPECT_EQ(m.resolve("PacketMetadata:InputPort"), addr::InputPort);
}

TEST(MemoryMap, PaperExampleAddressesMatchText) {
  // §3.2.1: "The memory locations 0xa000 + {0x1,0x2} could refer to the
  // input port and the selected route."
  EXPECT_EQ(addr::InputPort, 0xa001);
  EXPECT_EQ(addr::OutputPort, 0xa002);
  // §2: "[Queue:QueueSize] will be compiled to a virtual memory address
  // (say) 0xb000."
  EXPECT_EQ(addr::QueueBytes, 0xb000);
}

TEST(MemoryMap, UnknownNameFails) {
  EXPECT_FALSE(MemoryMap::standard().resolve("Queue:DoesNotExist"));
  EXPECT_FALSE(MemoryMap::standard().resolve(""));
}

TEST(MemoryMap, ReverseLookup) {
  const auto* info = MemoryMap::standard().lookup(addr::QueueBytes);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "Queue:QueueSize");
  EXPECT_EQ(MemoryMap::standard().lookup(0x0123), nullptr);
}

TEST(MemoryMap, EveryRegisteredStatResolvesToItsAddress) {
  const auto& m = MemoryMap::standard();
  for (const auto& s : m.all()) {
    EXPECT_EQ(m.resolve(s.name), s.address) << s.name;
  }
}

TEST(MemoryMap, AllFourPaperNamespacesPopulated) {
  // Table 2: per-switch, per-port, per-queue, per-packet.
  const auto& m = MemoryMap::standard();
  bool sw = false, port = false, queue = false, pkt = false;
  for (const auto& s : m.all()) {
    switch (MemoryMap::namespaceOf(s.address)) {
      case StatNamespace::Switch: sw = true; break;
      case StatNamespace::Port: port = true; break;
      case StatNamespace::Queue: queue = true; break;
      case StatNamespace::PacketMeta: pkt = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(sw);
  EXPECT_TRUE(port);
  EXPECT_TRUE(queue);
  EXPECT_TRUE(pkt);
}

TEST(MemoryMap, OnlyScratchIsWritable) {
  const auto& m = MemoryMap::standard();
  for (const auto& s : m.all()) {
    const bool scratch =
        MemoryMap::namespaceOf(s.address) == StatNamespace::Sram ||
        MemoryMap::namespaceOf(s.address) == StatNamespace::PortScratch;
    EXPECT_EQ(MemoryMap::writable(s.address), scratch) << s.name;
    EXPECT_EQ(s.access == Access::ReadWrite, scratch) << s.name;
  }
}

TEST(MemoryMap, AddExtendsWithoutBreakingStandard) {
  MemoryMap m = MemoryMap::standard();
  m.add(StatInfo{"Task:MyWord", static_cast<std::uint16_t>(kSramBase + 10),
                 Access::ReadWrite, "test"});
  EXPECT_EQ(m.resolve("Task:MyWord"), kSramBase + 10);
  EXPECT_EQ(m.resolve("Queue:QueueSize"), addr::QueueBytes);
}

struct NamespaceCase {
  std::uint16_t address;
  StatNamespace expected;
};

class NamespaceBoundaries : public ::testing::TestWithParam<NamespaceCase> {};

TEST_P(NamespaceBoundaries, Classifies) {
  EXPECT_EQ(MemoryMap::namespaceOf(GetParam().address), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Edges, NamespaceBoundaries,
    ::testing::Values(
        NamespaceCase{0x0000, StatNamespace::Unmapped},
        NamespaceCase{0x0fff, StatNamespace::Unmapped},
        NamespaceCase{0x1000, StatNamespace::Switch},
        NamespaceCase{0x1fff, StatNamespace::Switch},
        NamespaceCase{0x2000, StatNamespace::Port},
        NamespaceCase{0x2fff, StatNamespace::Port},
        NamespaceCase{0x3000, StatNamespace::Unmapped},
        NamespaceCase{0x9fff, StatNamespace::Unmapped},
        NamespaceCase{0xa000, StatNamespace::PacketMeta},
        NamespaceCase{0xafff, StatNamespace::PacketMeta},
        NamespaceCase{0xb000, StatNamespace::Queue},
        NamespaceCase{0xbfff, StatNamespace::Queue},
        NamespaceCase{0xc000, StatNamespace::Unmapped},
        NamespaceCase{0xd000, StatNamespace::PortScratch},
        NamespaceCase{0xdfff, StatNamespace::PortScratch},
        NamespaceCase{0xe000, StatNamespace::Sram},
        NamespaceCase{0xffff, StatNamespace::Sram}));

}  // namespace
}  // namespace tpp::core
