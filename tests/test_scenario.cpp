// Scenario library tests: flow-size sampler statistics, the config
// parser's round-trip/rejection/fuzz contracts, and the schedule
// compiler's determinism (ISSUE 9 satellites 2 and 3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/random.hpp"
#include "src/workload/flow_size.hpp"
#include "src/workload/scenario.hpp"

namespace tpp::workload {
namespace {

// ------------------------------------------------------ flow-size sampler

// 100k draws' empirical mean must sit within 5% of the analytic mean of
// the piecewise CDF (both production mixes are bounded, so the sample
// mean converges fast despite the heavy tail).
TEST(FlowSizeSampler, EmpiricalMeanMatchesAnalytic) {
  for (const FlowSizeDist dist :
       {FlowSizeDist::WebSearch, FlowSizeDist::DataMining,
        FlowSizeDist::Pareto}) {
    const FlowSizeSampler sampler(dist);
    sim::Rng rng(12345);
    constexpr int kDraws = 100'000;
    double sum = 0;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(sampler.draw(rng));
    }
    const double empirical = sum / kDraws;
    const double analytic = sampler.meanBytes();
    EXPECT_NEAR(empirical / analytic, 1.0, 0.05)
        << flowSizeDistName(dist) << ": empirical " << empirical
        << " vs analytic " << analytic;
  }
}

// Empirical CDF quantiles of the draws must match the configured CDF's
// inverse within a tolerance that accounts for interpolation granularity.
TEST(FlowSizeSampler, EmpiricalQuantilesMatchConfiguredCdf) {
  const FlowSizeSampler sampler(FlowSizeDist::WebSearch);
  sim::Rng rng(777);
  constexpr int kDraws = 100'000;
  std::vector<double> draws;
  draws.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) {
    draws.push_back(static_cast<double>(sampler.draw(rng)));
  }
  std::sort(draws.begin(), draws.end());
  for (const double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double empirical = draws[static_cast<std::size_t>(q * (kDraws - 1))];
    const double expected = sampler.quantileBytes(q);
    EXPECT_NEAR(empirical / expected, 1.0, 0.10)
        << "q=" << q << ": empirical " << empirical << " vs inverse-CDF "
        << expected;
  }
}

// The data-mining mix's signature: half of all flows are exactly one
// 1460-byte packet (the point mass two equal-size CDF knots encode).
TEST(FlowSizeSampler, DataMiningPointMassAtOnePacket) {
  const FlowSizeSampler sampler(FlowSizeDist::DataMining);
  sim::Rng rng(31337);
  constexpr int kDraws = 100'000;
  int onePacket = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (sampler.draw(rng) == 1460) ++onePacket;
  }
  const double frac = static_cast<double>(onePacket) / kDraws;
  EXPECT_NEAR(frac, 0.5, 0.02);
}

// Fixed seed => byte-identical draw sequence on a rerun, and exactly one
// uniform consumed per draw regardless of distribution (swapping the dist
// must not desynchronize later draws from the same stream).
TEST(FlowSizeSampler, DeterministicAcrossRerunsAndOneDrawPerSample) {
  const FlowSizeSampler ws(FlowSizeDist::WebSearch);
  std::vector<std::uint64_t> first;
  for (int run = 0; run < 2; ++run) {
    sim::Rng rng(4242);
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 1000; ++i) draws.push_back(ws.draw(rng));
    if (run == 0) first = draws;
    else EXPECT_EQ(first, draws);
  }

  // One uniform per draw: interleaving a websearch draw with a fixed draw
  // leaves the stream exactly where two websearch draws would.
  const FlowSizeSampler fixed(FlowSizeDist::Fixed, 1.0, 1024);
  sim::Rng a(99), b(99);
  (void)ws.draw(a);
  (void)ws.draw(a);
  (void)ws.draw(b);
  (void)fixed.draw(b);
  EXPECT_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(FlowSizeSampler, ScaleMultipliesSizesAndMean) {
  const FlowSizeSampler full(FlowSizeDist::WebSearch, 1.0);
  const FlowSizeSampler scaled(FlowSizeDist::WebSearch, 0.02);
  EXPECT_NEAR(scaled.meanBytes(), full.meanBytes() * 0.02, 1e-6);
  EXPECT_NEAR(scaled.quantileBytes(0.9), full.quantileBytes(0.9) * 0.02,
              1e-6);
}

TEST(FlowSizeSampler, NameRoundTrip) {
  for (const FlowSizeDist dist :
       {FlowSizeDist::WebSearch, FlowSizeDist::DataMining,
        FlowSizeDist::Pareto, FlowSizeDist::Fixed}) {
    FlowSizeDist back{};
    ASSERT_TRUE(flowSizeDistFromName(flowSizeDistName(dist), back));
    EXPECT_EQ(back, dist);
  }
  FlowSizeDist out{};
  EXPECT_FALSE(flowSizeDistFromName("weibull", out));
  EXPECT_FALSE(flowSizeDistFromName("", out));
}

// -------------------------------------------------------- parser contract

ScenarioConfig nonDefaultConfig() {
  ScenarioConfig c;
  c.name = "rt-test_1.x";
  c.seed = 987654321;
  c.shards = 4;
  c.horizonMs = 2.5;
  c.topology = TopologyType::FatTree;
  c.k = 16;
  c.nodes = 7;
  c.linkGbps = 40.0;
  c.linkDelayUs = 1.25;
  c.bufferKb = 64;
  c.ecnThresholdKb = 32;
  c.pattern = TrafficPattern::Incast;
  c.sizeDist = FlowSizeDist::DataMining;
  c.sizeScale = 0.031;
  c.fixedKb = 48;
  c.load = 0.35;
  c.flowsPerSec = 12345.5;
  c.maxFlows = 999;
  c.participants = 120;
  c.mss = 1400;
  c.fanin = 17;
  c.periodUs = 333.25;
  c.rounds = 9;
  c.staggerUs = 7.75;
  c.tppController = true;
  c.queueThresholdKb = 48;
  c.maxControllers = 21;
  c.dropRate = 0.001;
  c.corruptRate = 0.0005;
  c.queueSampleUs = 77.5;
  return c;
}

TEST(ScenarioParser, RoundTripIsExact) {
  const ScenarioConfig original = nonDefaultConfig();
  const std::string text = serializeScenario(original);
  const ParsedScenario once = parseScenario(text);
  ASSERT_TRUE(once.ok) << once.error;
  EXPECT_EQ(once.config, original);
  // And the canonical form is a fixed point: serialize(parse(s)) == s.
  EXPECT_EQ(serializeScenario(once.config), text);
}

TEST(ScenarioParser, DefaultsRoundTrip) {
  const ParsedScenario parsed = parseScenario(serializeScenario({}));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.config, ScenarioConfig{});
}

TEST(ScenarioParser, AcceptsCommentsAndWhitespace) {
  const ParsedScenario p = parseScenario(
      "# leading comment\n"
      "\n"
      "[scenario]\n"
      "  name = spaced   # trailing comment\n"
      "\tseed\t=\t5\n"
      "[topology]\n"
      "type = star\n"
      "nodes = 4\n");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.config.name, "spaced");
  EXPECT_EQ(p.config.seed, 5u);
  EXPECT_EQ(p.config.topology, TopologyType::Star);
}

// Every rejection must carry the offending line number.
struct RejectCase {
  const char* label;
  const char* text;
  const char* wantError;  // substring, including the "line N:" prefix
};

class ScenarioParserReject : public ::testing::TestWithParam<RejectCase> {};

TEST_P(ScenarioParserReject, RejectsWithLineNumber) {
  const RejectCase& rc = GetParam();
  const ParsedScenario p = parseScenario(rc.text);
  EXPECT_FALSE(p.ok) << rc.label;
  EXPECT_NE(p.error.find(rc.wantError), std::string::npos)
      << rc.label << ": got '" << p.error << "', want substring '"
      << rc.wantError << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Rejections, ScenarioParserReject,
    ::testing::Values(
        RejectCase{"unknown_section", "[scenario]\nseed = 1\n[bogus]\n",
                   "line 3: unknown section"},
        RejectCase{"unknown_key", "[scenario]\nname = x\nfrobnicate = 7\n",
                   "line 3: unknown key 'frobnicate'"},
        RejectCase{"key_before_section", "seed = 1\n",
                   "line 1: 'seed' before any [section]"},
        RejectCase{"malformed_line", "[scenario]\nthis is not a kv pair\n",
                   "line 2: expected 'key = value'"},
        RejectCase{"non_numeric", "[scenario]\nseed = banana\n",
                   "line 2: seed: not an integer"},
        RejectCase{"odd_k", "[topology]\nk = 7\n",
                   "line 2: k: fat-tree arity must be even"},
        RejectCase{"k_out_of_range", "[topology]\nk = 64\n",
                   "line 2: k: 64 out of range"},
        RejectCase{"bad_float", "[topology]\nlink_gbps = fast\n",
                   "line 2: link_gbps: not a number"},
        RejectCase{"negative_load", "[workload]\nload = -0.5\n",
                   "line 2: load: value out of range"},
        RejectCase{"bad_pattern", "[workload]\npattern = blizzard\n",
                   "line 2: pattern: expected poisson|incast|shuffle"},
        RejectCase{"bad_dist", "[workload]\nsize_dist = weibull\n",
                   "line 2: size_dist: expected"},
        RejectCase{"bad_bool", "[tpp]\ncontroller = maybe\n",
                   "line 2: controller: expected on|off"},
        RejectCase{"drop_rate_too_high", "[faults]\ndrop_rate = 0.9\n",
                   "line 2: drop_rate: value out of range"},
        RejectCase{"max_flows_cap", "[workload]\nmax_flows = 100000\n",
                   "line 2: max_flows: 100000 out of range"},
        RejectCase{"bad_name_chars", "[scenario]\nname = a b\n",
                   "line 2: name: only"},
        RejectCase{"unterminated_section", "[scenario\n",
                   "line 1: unterminated section header"},
        RejectCase{"shards_without_fattree",
                   "[scenario]\nshards = 2\n[topology]\ntype = star\n"
                   "nodes = 4\n",
                   "line 2: shards > 1 requires a fat-tree"},
        RejectCase{"participants_exceed_hosts",
                   "[topology]\ntype = fattree\nk = 4\n[workload]\n"
                   "participants = 999\n",
                   "line 5: participants: 999 exceeds"},
        RejectCase{"fanin_exceeds_senders",
                   "[topology]\ntype = star\nnodes = 4\n[workload]\n"
                   "pattern = incast\nfanin = 10\n",
                   "line 6: fanin: 10 exceeds"},
        RejectCase{"shuffle_exceeds_max_flows",
                   "[topology]\ntype = fattree\nk = 8\n[workload]\n"
                   "pattern = shuffle\nmax_flows = 50\nparticipants = 16\n",
                   "line 6: shuffle needs"}),
    [](const ::testing::TestParamInfo<RejectCase>& info) {
      return info.param.label;
    });

// Garbage input must never crash or hang — only ok=false with an error
// (run under the asan/ubsan legs, this is the memory-safety fuzz of
// satellite 3). Deterministic LCG so failures reproduce.
TEST(ScenarioParserFuzz, GarbageInputsNeverCrash) {
  std::uint64_t state = 0x243F6A8885A308D3ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  const char alphabet[] =
      "[]=#\n\t .-_abcdefghijklmnopqrstuvwxyz0123456789\xff\x00\x80";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text;
    const std::size_t len = next() % 200;
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[next() % (sizeof alphabet - 1)]);
    }
    const ParsedScenario p = parseScenario(text);
    if (!p.ok) {
      EXPECT_FALSE(p.error.empty());
      EXPECT_EQ(p.error.rfind("line ", 0), 0u) << "error: " << p.error;
    }
  }
  // Mutations of a valid config: flip bytes of the canonical serialization.
  const std::string base = serializeScenario({});
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = base;
    const int flips = 1 + static_cast<int>(next() % 8);
    for (int i = 0; i < flips; ++i) {
      text[next() % text.size()] =
          alphabet[next() % (sizeof alphabet - 1)];
    }
    (void)parseScenario(text);  // must not crash; ok either way
  }
}

// ----------------------------------------------------- schedule compiler

TEST(CompileSchedule, DeterministicAndInsideHorizon) {
  ScenarioConfig c;
  c.topology = TopologyType::FatTree;
  c.k = 4;
  c.seed = 5;
  c.horizonMs = 2.0;
  c.flowsPerSec = 50000;
  c.maxFlows = 200;
  const std::vector<FlowPlan> a = compileSchedule(c);
  const std::vector<FlowPlan> b = compileSchedule(c);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  const sim::Time horizon = sim::Time::seconds(c.horizonMs * 1e-3);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_NE(a[i].src, a[i].dst);
    EXPECT_LT(a[i].arrival, horizon);
    EXPECT_GE(a[i].bytes, 1u);
  }
}

TEST(CompileSchedule, IncastTargetsOneReceiver) {
  ScenarioConfig c;
  c.topology = TopologyType::FatTree;
  c.k = 4;
  c.pattern = TrafficPattern::Incast;
  c.sizeDist = FlowSizeDist::Fixed;
  c.fixedKb = 16;
  c.fanin = 8;
  c.rounds = 3;
  const std::vector<FlowPlan> plans = compileSchedule(c);
  ASSERT_EQ(plans.size(), 24u);
  const std::size_t receiver = plans[0].dst;
  for (const FlowPlan& p : plans) {
    EXPECT_EQ(p.dst, receiver);
    EXPECT_NE(p.src, receiver);
    EXPECT_EQ(p.bytes, 16u * 1024);
  }
}

TEST(CompileSchedule, ShuffleCoversAllOrderedPairs) {
  ScenarioConfig c;
  c.topology = TopologyType::FatTree;
  c.k = 4;
  c.pattern = TrafficPattern::Shuffle;
  c.participants = 6;
  c.maxFlows = 64;
  const std::vector<FlowPlan> plans = compileSchedule(c);
  EXPECT_EQ(plans.size(), 6u * 5u);
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const FlowPlan& p : plans) pairs.insert({p.src, p.dst});
  EXPECT_EQ(pairs.size(), plans.size()) << "duplicate (src,dst) pair";
}

// Participant selection spreads across the topology and never depends on
// shard count (it is pure index arithmetic).
TEST(CompileSchedule, ParticipantsSpreadAcrossPods) {
  ScenarioConfig c;
  c.topology = TopologyType::FatTree;
  c.k = 8;  // 128 hosts, 32 per... 16 pods? (k=8: 16 hosts/pod)
  c.participants = 16;
  const std::vector<std::size_t> hosts = c.participantHosts();
  ASSERT_EQ(hosts.size(), 16u);
  // k=8: 16 hosts per pod; stride 8 puts two participants in each pod.
  std::set<std::size_t> pods;
  for (const std::size_t h : hosts) pods.insert(h / 16);
  EXPECT_EQ(pods.size(), 8u);
}

}  // namespace
}  // namespace tpp::workload
