// Golden-trace scenarios: small, fully deterministic app runs whose
// serialized flight-recorder output is checked in under tests/golden/ and
// compared byte-for-byte by test_golden.cpp. regen_golden.cpp rewrites the
// files from the same definitions, so test and regenerator cannot drift.
//
// Determinism contract: everything below is driven by the simulator clock
// and fixed seeds — no wall clock, no unordered iteration, no environment.
// Goldens are pinned to the gcc CI leg; clang may fuse floating-point math
// differently in the rate/time conversions, so the clang leg excludes the
// `golden` label rather than chasing last-ulp differences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tpp::test {

// Scenario names, in regeneration order: "microburst", "rcpstar", "ndb".
const std::vector<std::string>& goldenScenarioNames();

// Which run path drives the scenario. Legacy is the plain Simulator loop
// the goldens were recorded against; ShardedWrapper pushes the very same
// scenario through ShardedSimulator::run() with a single shard plus the
// per-shard recorder merge — which must produce the very same bytes.
enum class GoldenRunner { Legacy, ShardedWrapper };

// Runs one scenario and returns the serialized trace (tpptrace format).
// Aborts on an unknown name.
std::vector<std::uint8_t> runGoldenScenario(
    const std::string& name, GoldenRunner runner = GoldenRunner::Legacy);

// "<name>.tpptrace" — the filename a scenario's golden is stored under.
std::string goldenFileName(const std::string& name);

}  // namespace tpp::test
