// End-to-end verification of every dataplane register a TPP can read,
// against the switch's ground-truth counters — the Table 2 contract, field
// by field.
#include <gtest/gtest.h>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/flow.hpp"
#include "src/host/topology.hpp"

namespace tpp::asic {
namespace {

namespace addr = core::addr;
using host::Testbed;

struct RegisterFixture : public ::testing::Test {
  Testbed tb;
  std::vector<core::ExecutedTpp> results;

  void SetUp() override {
    buildChain(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(5)});
    tb.host(0).onTppResult(
        [this](const core::ExecutedTpp& t) { results.push_back(t); });
  }

  // Sends a single-PUSH probe and returns the value read at each hop.
  std::vector<std::uint32_t> readAll(std::uint16_t address) {
    core::ProgramBuilder b;
    b.push(address);
    b.reserve(4);
    const auto before = results.size();
    tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), *b.build());
    tb.sim().run(tb.sim().now() + sim::Time::ms(5));
    if (results.size() != before + 1) return {};
    std::vector<std::uint32_t> out;
    for (const auto& rec : host::splitStackRecords(results.back(), 1)) {
      out.push_back(rec[0]);
    }
    return out;
  }

  void pumpTraffic(int packets) {
    for (int i = 0; i < packets; ++i) {
      tb.host(0).sendUdp(tb.host(1).mac(), tb.host(1).ip(), 30000, 30000,
                         std::vector<std::uint8_t>(500, 0));
    }
    tb.sim().run(tb.sim().now() + sim::Time::ms(10));
  }
};

TEST_F(RegisterFixture, TxCountersMatchGroundTruth) {
  pumpTraffic(10);
  const auto txPackets = readAll(addr::TxPackets);
  ASSERT_EQ(txPackets.size(), 2u);
  // Probe reads the register BEFORE its own transmission is counted.
  EXPECT_EQ(txPackets[0], tb.sw(0).portStats(1).txPackets - 1);
  const auto txBytes = readAll(addr::TxBytes);
  ASSERT_EQ(txBytes.size(), 2u);
  EXPECT_GT(txBytes[0], 10u * 500u);
}

TEST_F(RegisterFixture, RxCountersUseIngressPort) {
  pumpTraffic(10);
  const auto rxPackets = readAll(addr::RxPackets);
  ASSERT_EQ(rxPackets.size(), 2u);
  // At sw0, ingress is h0's port which saw the 10 data packets + probes.
  EXPECT_GE(rxPackets[0], 11u);
  const auto rxBytes = readAll(addr::RxBytes);
  EXPECT_GE(rxBytes[0], 10u * 500u);
}

TEST_F(RegisterFixture, SwitchTotalsVisible) {
  pumpTraffic(5);
  const auto totalRx = readAll(addr::TotalRxPackets);
  ASSERT_EQ(totalRx.size(), 2u);
  EXPECT_GE(totalRx[0], 6u);
  const auto totalTx = readAll(addr::TotalTxPackets);
  EXPECT_GE(totalTx[0], 6u);
  const auto drops = readAll(addr::TotalDrops);
  EXPECT_EQ(drops[0], tb.sw(0).stats().totalDrops);
}

TEST_F(RegisterFixture, QueueCumulativeCounters) {
  pumpTraffic(10);
  const auto enq = readAll(addr::QueueEnqueuedBytes);
  ASSERT_EQ(enq.size(), 2u);
  // The probe reads the counter before its own enqueue is recorded.
  EXPECT_LT(enq[0], tb.sw(0).queueStats(1, 0).enqueuedBytes);
  EXPECT_GE(tb.sw(0).queueStats(1, 0).enqueuedBytes - enq[0], 60u);
  EXPECT_GT(enq[0], 10u * 500u);
  const auto dropped = readAll(addr::QueueDroppedPackets);
  EXPECT_EQ(dropped[0], 0u);
}

TEST_F(RegisterFixture, QueueCapacityMatchesConfig) {
  const auto cap = readAll(addr::QueueCapacityBytes);
  ASSERT_EQ(cap.size(), 2u);
  EXPECT_EQ(cap[0], tb.sw(0).config().bufferPerQueueBytes);
}

TEST_F(RegisterFixture, CapacityRegisterInMbps) {
  const auto cap = readAll(addr::LinkCapacityMbps);
  ASSERT_EQ(cap.size(), 2u);
  EXPECT_EQ(cap[0], 1000u);  // 1 Gb/s egress
  EXPECT_EQ(cap[1], 1000u);
}

TEST_F(RegisterFixture, TimeHiLowTogetherEncodeNanoseconds) {
  // Advance past 2^32 ns (~4.3 s) so TimeHi is non-zero.
  tb.sim().run(sim::Time::sec(5));
  core::ProgramBuilder b;
  b.push(addr::TimeHi);
  b.push(addr::TimeLo);
  b.reserve(4);
  const auto before = results.size();
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), *b.build());
  tb.sim().run(tb.sim().now() + sim::Time::ms(5));
  ASSERT_EQ(results.size(), before + 1);
  const auto recs = host::splitStackRecords(results.back(), 2);
  ASSERT_EQ(recs.size(), 2u);
  const auto ns =
      (static_cast<std::uint64_t>(recs[0][0]) << 32) | recs[0][1];
  EXPECT_NEAR(static_cast<double>(ns), 5e9, 0.1e9);
}

TEST_F(RegisterFixture, RxUtilizationTracksIngressLoad) {
  // 400 Mb/s into sw0's ingress; utilization reads in ppm of 1 Gb/s.
  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.rateBps = 400e6;
  host::PacedFlow flow(tb.host(0), spec, 1);
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(50));
  const auto util = readAll(addr::RxUtilization);
  flow.stop();
  tb.sim().run(tb.sim().now() + sim::Time::ms(10));
  ASSERT_EQ(util.size(), 2u);
  EXPECT_NEAR(util[0], 390'000.0, 50'000.0);  // payload fraction of 400k ppm
}

TEST_F(RegisterFixture, PortQueueBytesAggregatesAllQueues) {
  // Steer to queue 5 and pile up a backlog behind a paused egress... the
  // simplest observable: with idle network both reads agree at zero.
  const auto perQueue = readAll(addr::QueueBytes);
  const auto perPort = readAll(addr::PortQueueBytes);
  ASSERT_EQ(perQueue.size(), 2u);
  ASSERT_EQ(perPort.size(), 2u);
  EXPECT_EQ(perQueue[0], 0u);
  EXPECT_EQ(perPort[0], 0u);
}

TEST_F(RegisterFixture, TableVersionsAdvanceWithControlChanges) {
  const auto v1 = readAll(addr::L3TableVersion);
  tb.sw(0).l3().add(net::Ipv4Address::fromOctets(10, 50, 0, 0), 16, 1);
  const auto v2 = readAll(addr::L3TableVersion);
  ASSERT_EQ(v1.size(), 2u);
  ASSERT_EQ(v2.size(), 2u);
  EXPECT_EQ(v2[0], v1[0] + 1);
  EXPECT_EQ(v2[1], v1[1]);  // only sw0 changed

  const auto t1 = readAll(addr::TcamVersion);
  TcamKey k;  // narrow rule that never matches live traffic
  k.ipDst = {net::Ipv4Address::fromOctets(10, 99, 0, 1), 32};
  tb.sw(1).tcam().add(k, TcamAction{0, std::nullopt, true}, -1000);
  const auto t2 = readAll(addr::TcamVersion);
  ASSERT_EQ(t2.size(), 2u);
  EXPECT_EQ(t2[1], t1[1] + 1);
}

TEST_F(RegisterFixture, L2VersionAdvancesOnRelearn) {
  const auto v1 = readAll(addr::L2TableVersion);
  tb.sw(0).l2().add(net::MacAddress::fromIndex(200), 0);
  const auto v2 = readAll(addr::L2TableVersion);
  EXPECT_EQ(v2[0], v1[0] + 1);
}

TEST_F(RegisterFixture, BootEpochReadableAndBumpsOnReboot) {
  const auto e1 = readAll(addr::SwitchBootEpoch);
  ASSERT_EQ(e1.size(), 2u);
  EXPECT_EQ(e1[0], 1u);  // first life
  tb.sw(0).reboot();
  const auto e2 = readAll(addr::SwitchBootEpoch);
  ASSERT_EQ(e2.size(), 2u);
  EXPECT_EQ(e2[0], e1[0] + 1);
  EXPECT_EQ(e2[1], e1[1]);  // only sw0 rebooted
  EXPECT_EQ(tb.sw(0).stats().reboots, 1u);
}

// Satellite: per-port drop-tail counters exposed through the memory map.
TEST(DropCounterRegisters, PerPortDropTailCountersMatchGroundTruth) {
  Testbed tb;
  SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 3000;  // tiny buffer: a 1G burst into 10M drops
  buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(5)},
                host::LinkParams{10'000'000, sim::Time::us(5)}, cfg);
  std::vector<core::ExecutedTpp> results;
  tb.host(0).onTppResult(
      [&](const core::ExecutedTpp& t) { results.push_back(t); });
  for (int i = 0; i < 50; ++i) {
    tb.host(0).sendUdp(tb.host(1).mac(), tb.host(1).ip(), 30000, 30000,
                       std::vector<std::uint8_t>(1000, 0));
  }
  tb.sim().run(tb.sim().now() + sim::Time::ms(100));  // burst drains

  core::ProgramBuilder b;
  b.push(addr::PortDroppedPackets);
  b.push(addr::PortDroppedBytes);
  b.reserve(4);
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), *b.build());
  tb.sim().run(tb.sim().now() + sim::Time::ms(5));
  ASSERT_EQ(results.size(), 1u);
  const auto recs = host::splitStackRecords(results.back(), 2);
  ASSERT_EQ(recs.size(), 2u);

  // Hop 0 = left switch, egress = the dropping bottleneck port (port 1).
  std::uint64_t truthPackets = 0, truthBytes = 0;
  for (std::size_t q = 0; q < tb.sw(0).config().queuesPerPort; ++q) {
    truthPackets += tb.sw(0).queueStats(1, q).droppedPackets;
    truthBytes += tb.sw(0).queueStats(1, q).droppedBytes;
  }
  EXPECT_GT(truthPackets, 0u);
  EXPECT_EQ(recs[0][0], truthPackets);
  EXPECT_EQ(recs[0][1], static_cast<std::uint32_t>(truthBytes));
  // Hop 1 = right switch: nothing dropped toward the receiver.
  EXPECT_EQ(recs[1][0], 0u);
}

}  // namespace
}  // namespace tpp::asic
