#include "src/core/header.hpp"

#include <gtest/gtest.h>

#include "src/core/program.hpp"
#include "src/net/byte_io.hpp"
#include "src/net/ethernet.hpp"

namespace tpp::core {
namespace {

TppHeader sampleHeader() {
  TppHeader h;
  h.instrWords = 3;
  h.pmemWords = 8;
  h.mode = AddressingMode::Hop;
  h.flags = 0;
  h.hopNumber = 2;
  h.stackPointer = 12;
  h.perHopWords = 4;
  h.faultCode = Fault::None;
  h.innerEtherType = net::kEtherTypeIpv4;
  h.taskId = 7;
  return h;
}

TEST(TppHeader, RoundTrip) {
  std::vector<std::uint8_t> buf(kTppHeaderSize, 0);
  const auto h = sampleHeader();
  h.write(buf);
  const auto p = TppHeader::parse(buf);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->instrWords, 3);
  EXPECT_EQ(p->pmemWords, 8);
  EXPECT_EQ(p->mode, AddressingMode::Hop);
  EXPECT_EQ(p->hopNumber, 2);
  EXPECT_EQ(p->stackPointer, 12);
  EXPECT_EQ(p->perHopWords, 4);
  EXPECT_EQ(p->faultCode, Fault::None);
  EXPECT_EQ(p->innerEtherType, net::kEtherTypeIpv4);
  EXPECT_EQ(p->taskId, 7);
}

TEST(TppHeader, ParseRejectsShortBuffer) {
  std::vector<std::uint8_t> buf(kTppHeaderSize - 1, 0);
  EXPECT_FALSE(TppHeader::parse(buf));
}

TEST(TppHeader, HeaderIsTwelveBytes) {
  // Fig 4 allots "up to 20 bytes" for the TPP header fields; ours fits in
  // 12, leaving the instruction budget untouched.
  static_assert(kTppHeaderSize == 12);
}

net::PacketPtr makeTppPacket(const Program& program) {
  return buildTppFrame(net::MacAddress::fromIndex(2),
                       net::MacAddress::fromIndex(1), program);
}

Program pushProgram() {
  ProgramBuilder b;
  b.push(0xb000);
  b.reserve(6);
  return *b.build();
}

TEST(TppView, RejectsTruncatedDeclaredLengths) {
  auto packet = net::Packet::make(net::kEthernetHeaderSize + kTppHeaderSize);
  // Declare 10 instruction words that do not exist.
  packet->bytes()[net::kEthernetHeaderSize] = 10;
  EXPECT_FALSE(TppView::at(*packet, net::kEthernetHeaderSize));
}

TEST(TppView, RejectsMissingHeader) {
  auto packet = net::Packet::make(10);
  EXPECT_FALSE(TppView::at(*packet, 4));
}

TEST(TppView, FieldAccessorsReadWire) {
  auto packet = makeTppPacket(pushProgram());
  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->instrWords(), 1);
  EXPECT_EQ(view->pmemWords(), 6);
  EXPECT_EQ(view->mode(), AddressingMode::Stack);
  EXPECT_EQ(view->hopNumber(), 0);
  EXPECT_EQ(view->stackPointer(), 0);
}

TEST(TppView, MutationsCommitInPlace) {
  auto packet = makeTppPacket(pushProgram());
  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  view->setHopNumber(3);
  view->setStackPointer(8);
  // Re-view from raw bytes: changes must be on the wire.
  auto view2 = TppView::at(*packet, net::kEthernetHeaderSize);
  EXPECT_EQ(view2->hopNumber(), 3);
  EXPECT_EQ(view2->stackPointer(), 8);
}

TEST(TppView, PmemBoundsChecked) {
  auto packet = makeTppPacket(pushProgram());
  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  EXPECT_TRUE(view->setPmemWord(5, 0x12345678));
  EXPECT_EQ(view->pmemWord(5), 0x12345678u);
  EXPECT_FALSE(view->setPmemWord(6, 1));
  EXPECT_FALSE(view->pmemWord(6).has_value());
}

TEST(TppView, FirstFaultWins) {
  auto packet = makeTppPacket(pushProgram());
  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  view->setFault(Fault::UnmappedAddress);
  view->setFault(Fault::ReadOnlyViolation);
  EXPECT_EQ(view->faultCode(), Fault::UnmappedAddress);
  EXPECT_TRUE(view->flags() & kFlagFaulted);
}

TEST(TppView, FlagsAccumulate) {
  auto packet = makeTppPacket(pushProgram());
  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  view->setFlag(kFlagCexecSkipped);
  view->setFault(Fault::GrantViolation);
  EXPECT_TRUE(view->flags() & kFlagCexecSkipped);
  EXPECT_TRUE(view->flags() & kFlagFaulted);
}

TEST(TppView, InstructionWordsReadBack) {
  auto packet = makeTppPacket(pushProgram());
  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  const auto decoded = Instruction::decode(view->instructionWord(0));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->op, Opcode::Push);
  EXPECT_EQ(decoded->addr, 0xb000);
}

TEST(TppView, PayloadOffsetSkipsWholeTpp) {
  auto packet = makeTppPacket(pushProgram());
  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  EXPECT_EQ(view->payloadOffset(),
            net::kEthernetHeaderSize + kTppHeaderSize + 4 + 6 * 4);
  EXPECT_EQ(view->tppSizeBytes(), kTppHeaderSize + 4 + 6 * 4);
}

TEST(FaultNames, AllDistinct) {
  EXPECT_EQ(faultName(Fault::None), "none");
  EXPECT_EQ(faultName(Fault::PmemOutOfBounds), "pmem-out-of-bounds");
  EXPECT_EQ(faultName(Fault::UnmappedAddress), "unmapped-address");
  EXPECT_EQ(faultName(Fault::ReadOnlyViolation), "read-only-violation");
  EXPECT_EQ(faultName(Fault::GrantViolation), "grant-violation");
  EXPECT_EQ(faultName(Fault::BadInstruction), "bad-instruction");
  EXPECT_EQ(faultName(Fault::HopOverflow), "hop-overflow");
}

}  // namespace
}  // namespace tpp::core
