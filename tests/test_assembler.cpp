#include "src/core/assembler.hpp"

#include <gtest/gtest.h>

#include "src/core/memory_map.hpp"

namespace tpp::core {
namespace {

Program mustAssemble(std::string_view src) {
  auto result = assemble(src);
  if (auto* err = std::get_if<AssemblyError>(&result)) {
    ADD_FAILURE() << "line " << err->line << ": " << err->message;
    return {};
  }
  return std::get<Program>(result);
}

TEST(Assembler, PaperMicroburstProgram) {
  // §2.1: PUSH [Queue:QueueSize]
  const auto p = mustAssemble("PUSH [Queue:QueueSize]\n");
  ASSERT_EQ(p.instructions.size(), 1u);
  EXPECT_EQ(p.instructions[0].op, Opcode::Push);
  EXPECT_EQ(p.instructions[0].addr, addr::QueueBytes);
  EXPECT_GT(p.pmemWords, 0);  // default reserve for pushes
}

TEST(Assembler, PaperRcpCollectProgram) {
  const auto p = mustAssemble(R"(
    # Phase 1: Collect (§2.2)
    PUSH [Switch:SwitchID]
    PUSH [Link:QueueSize]
    PUSH [Link:RX-Utilization]
    PUSH [Link:RCP-RateRegister]
  )");
  ASSERT_EQ(p.instructions.size(), 4u);
  EXPECT_EQ(p.instructions[3].addr, addr::RcpRateRegister);
}

TEST(Assembler, PaperRcpUpdateProgram) {
  const auto p = mustAssemble(R"(
    .define BottleneckSwitchID 0x2
    CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
    STORE [Link:RCP-RateRegister], [Packet:2]
  )");
  ASSERT_EQ(p.instructions.size(), 2u);
  EXPECT_EQ(p.instructions[0].op, Opcode::Cexec);
  EXPECT_EQ(p.instructions[0].pmemOff, 0);
  EXPECT_EQ(p.initialPmem[0], 0xffffffffu);
  EXPECT_EQ(p.initialPmem[1], 0x2u);
  EXPECT_EQ(p.instructions[1].op, Opcode::Store);
  EXPECT_EQ(p.instructions[1].pmemOff, 2);
}

TEST(Assembler, PaperNdbProgram) {
  const auto p = mustAssemble(R"(
    PUSH [Switch:ID]
    PUSH [PacketMetadata:MatchedEntryID]
    PUSH [PacketMetadata:InputPort]
  )");
  ASSERT_EQ(p.instructions.size(), 3u);
  EXPECT_EQ(p.instructions[0].addr, addr::SwitchId);
  EXPECT_EQ(p.instructions[1].addr, addr::MatchedEntryId);
  EXPECT_EQ(p.instructions[2].addr, addr::InputPort);
}

TEST(Assembler, HopModeAndDirectives) {
  const auto p = mustAssemble(R"(
    .mode hop
    .perhop 4
    .reserve 20
    .task 9
    LOAD [Switch:SwitchID], [Packet:hop[1]]
  )");
  EXPECT_EQ(p.mode, AddressingMode::Hop);
  EXPECT_EQ(p.perHopWords, 4);
  EXPECT_EQ(p.pmemWords, 20);
  EXPECT_EQ(p.taskId, 9);
  EXPECT_EQ(p.instructions[0].pmemOff, 1);
}

TEST(Assembler, LiteralAddressOperand) {
  const auto p = mustAssemble(".reserve 1\nLOAD [0xB000], [Packet:0]\n");
  EXPECT_EQ(p.instructions[0].addr, 0xb000);
}

TEST(Assembler, StoreImmediateStagesPacketMemory) {
  const auto p = mustAssemble("STORE [Link:RCP-RateRegister], 1234\n");
  EXPECT_EQ(p.initialPmem[p.instructions[0].pmemOff], 1234u);
}

TEST(Assembler, CstoreWithImmediates) {
  const auto p = mustAssemble("CSTORE [Sram:Word0], 0, 7\n");
  EXPECT_EQ(p.instructions[0].op, Opcode::Cstore);
  EXPECT_EQ(p.initialPmem[0], 0u);
  EXPECT_EQ(p.initialPmem[1], 7u);
}

TEST(Assembler, CstoreWithAdjacentPacketOperands) {
  const auto p = mustAssemble(
      ".reserve 4\nCSTORE [Sram:Word0], [Packet:1], [Packet:2]\n");
  EXPECT_EQ(p.instructions[0].pmemOff, 1);
}

TEST(Assembler, ArithmeticMnemonics) {
  const auto p = mustAssemble(R"(
    .reserve 2
    ADD [Link:TxBytes], [Packet:0]
    SUB [Link:TxBytes], [Packet:0]
    MIN [Queue:QueueSize], [Packet:1]
    MAX [Queue:QueueSize], [Packet:1]
    NOP
  )");
  ASSERT_EQ(p.instructions.size(), 5u);
  EXPECT_EQ(p.instructions[0].op, Opcode::Add);
  EXPECT_EQ(p.instructions[4].op, Opcode::Nop);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto p = mustAssemble(R"(
    # full-line comment
    ; alternative comment

    PUSH [Queue:QueueSize]   # trailing comment
    PUSH [Switch:SwitchID]   ; trailing comment
  )");
  EXPECT_EQ(p.instructions.size(), 2u);
}

TEST(Assembler, PopMnemonic) {
  const auto p = mustAssemble(".reserve 2\nPOP [Sram:Word0]\n");
  EXPECT_EQ(p.instructions[0].op, Opcode::Pop);
}

struct ErrorCase {
  const char* name;
  const char* source;
};

class AssemblerErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(AssemblerErrors, Rejects) {
  auto result = assemble(GetParam().source);
  EXPECT_TRUE(std::holds_alternative<AssemblyError>(result))
      << GetParam().source;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        ErrorCase{"UnknownMnemonic", "JUMP [Queue:QueueSize]\n"},
        ErrorCase{"UnknownStatistic", "PUSH [Queue:Nope]\n"},
        ErrorCase{"UndefinedConstant", "CEXEC [Switch:ID], 0xff, $missing\n"},
        ErrorCase{"PushTooManyOperands", "PUSH [Switch:ID], [Packet:0]\n"},
        ErrorCase{"LoadTooFewOperands", "LOAD [Switch:ID]\n"},
        ErrorCase{"LoadImmediateTarget", "LOAD [Switch:ID], 5\n"},
        ErrorCase{"CexecTwoOperands", "CEXEC [Switch:ID], 0xff\n"},
        ErrorCase{"CstoreNonAdjacent",
                  ".reserve 4\nCSTORE [Sram:Word0], [Packet:0], [Packet:3]\n"},
        ErrorCase{"BadDirective", ".frobnicate 3\n"},
        ErrorCase{"BadMode", ".mode sideways\n"},
        ErrorCase{"UnterminatedBracket", "PUSH [Queue:QueueSize\n"},
        ErrorCase{"AddressOutOfRange", ".reserve 1\nLOAD [0x10000], [Packet:0]\n"},
        ErrorCase{"PacketIndexTooBig", "LOAD [Switch:ID], [Packet:300]\n"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Assembler, ErrorCarriesLineNumber) {
  auto result = assemble("PUSH [Queue:QueueSize]\nBOGUS\n");
  const auto* err = std::get_if<AssemblyError>(&result);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->line, 2);
}

TEST(Assembler, EncodingLimitErrorPointsAtLastContentLine) {
  // 256 instructions overflow the 8-bit instrWords field. The error must
  // name the last line that contributed, not one past end-of-file.
  std::string src = "# too many instructions\n";
  for (int i = 0; i < 256; ++i) src += "NOP\n";
  auto result = assemble(src);
  const auto* err = std::get_if<AssemblyError>(&result);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->message, "program exceeds encoding limits");
  EXPECT_EQ(err->line, 257);  // the 256th NOP
}

TEST(Assembler, InitOverflowErrorPointsAtTheInitDirective) {
  // Index 255 parses, but initializing it needs a 256-word packet memory.
  auto result = assemble(
      "NOP\n"
      ".init 255 1\n"
      "NOP\n");
  const auto* err = std::get_if<AssemblyError>(&result);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->message, "packet memory exceeds 255 words");
  EXPECT_EQ(err->line, 2);  // the .init, not the last line
}

TEST(Disassembler, RoundTripsThroughAssembler) {
  const auto original = mustAssemble(R"(
    .reserve 8
    PUSH [Queue:QueueSize]
    CEXEC [Switch:SwitchID], 0xFFFFFFFF, 0x2
    STORE [Link:RCP-RateRegister], [Packet:2]
  )");
  const auto text = disassemble(original);
  const auto again = mustAssemble(text);
  EXPECT_EQ(again, original) << text;
}

TEST(Disassembler, RoundTripsHopModePrograms) {
  const auto original = mustAssemble(R"(
    .mode hop
    .perhop 2
    .task 5
    .reserve 16
    LOAD [Switch:SwitchID], [Packet:hop[0]]
    LOAD [Queue:QueueSize], [Packet:hop[1]]
  )");
  const auto again = mustAssemble(disassemble(original));
  EXPECT_EQ(again, original);
}

TEST(Disassembler, NamesKnownAddresses) {
  const auto p = mustAssemble("PUSH [Queue:QueueSize]\n");
  EXPECT_NE(disassemble(p).find("[Queue:QueueSize]"), std::string::npos);
}

}  // namespace
}  // namespace tpp::core
