// Static-verifier tests: the documented edge cases, check toggling, and
// the differential property the verifier's soundness contract promises —
// any accepted program executes its full hop budget without faulting.
#include "src/core/verifier.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/agent.hpp"
#include "src/core/assembler.hpp"
#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"
#include "src/sim/random.hpp"

namespace tpp::core {
namespace {

using host::Testbed;

bool anyMessageContains(const VerifyResult& r, std::string_view needle) {
  for (const auto& d : r.diagnostics) {
    if (d.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ------------------------------------------------------------ edge cases

TEST(Verifier, CexecGuardDoesNotRelaxGrantWindows) {
  // A CEXEC-guarded STORE past the task's grant window must still be an
  // error: the predicate cannot be proven false statically, so some
  // switch along the path may execute the store.
  SramAllocator grants;
  const auto grant = grants.allocate(/*taskId=*/7, /*words=*/4);
  ASSERT_TRUE(grant.has_value());
  ASSERT_TRUE(grants.enforcing());

  ProgramBuilder b;
  b.task(7);
  b.cexec(addr::SwitchId, 0xffffffffu, 1);
  b.store(static_cast<std::uint16_t>(grant->baseAddress() + grant->words), 0);
  const auto program = *b.build();

  VerifyOptions opts;
  opts.grants = &grants;
  const auto result = verify(program, MemoryMap::standard(), opts);
  EXPECT_FALSE(result.ok());
  ASSERT_GE(result.errors, 1u);
  EXPECT_TRUE(anyMessageContains(result, "grant window"));
  EXPECT_TRUE(anyMessageContains(
      result, "CEXEC guard cannot be proven false statically"));

  // The same store inside the window is clean.
  ProgramBuilder ok;
  ok.task(7);
  ok.cexec(addr::SwitchId, 0xffffffffu, 1);
  ok.store(grant->baseAddress(), 0);
  EXPECT_TRUE(verify(*ok.build(), MemoryMap::standard(), opts).ok());
}

TEST(Verifier, PerHopRecordMismatchWarns) {
  // Records touch 3 words but .perhop claims 2: successive hops overlap.
  ProgramBuilder b;
  b.mode(AddressingMode::Hop);
  b.perHop(2);
  b.load(addr::SwitchId, 0);
  b.load(addr::QueueBytes, 1);
  b.load(addr::TimeLo, 2);
  b.reserve(3);
  auto result = verify(*b.build(), MemoryMap::standard(), {.maxHops = 1});
  EXPECT_TRUE(result.ok());  // a layout smell, not a fault
  EXPECT_GE(result.warnings, 1u);
  EXPECT_TRUE(anyMessageContains(result, "hop records overlap"));

  // Touching fewer words than .perhop misaligns end-host parsing.
  ProgramBuilder c;
  c.mode(AddressingMode::Hop);
  c.perHop(4);
  c.load(addr::SwitchId, 0);
  c.reserve(4);
  result = verify(*c.build(), MemoryMap::standard(), {.maxHops = 1});
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(anyMessageContains(result, "misalign"));
}

TEST(Verifier, StackOverflowExactHopBoundary) {
  // One PUSH per hop into 4 reserved words: exactly 4 hops fit, the 5th
  // overflows. The bound must be exact, not approximate.
  ProgramBuilder b;
  b.push(addr::SwitchId);
  b.reserve(4);
  const auto program = *b.build();

  EXPECT_TRUE(verify(program, MemoryMap::standard(), {.maxHops = 4}).ok());

  const auto over = verify(program, MemoryMap::standard(), {.maxHops = 5});
  EXPECT_FALSE(over.ok());
  EXPECT_TRUE(anyMessageContains(over, "at hop 4"));
  EXPECT_TRUE(anyMessageContains(over, "PmemOutOfBounds"));
}

TEST(Verifier, StoreToReadOnlyStatisticIsAnError) {
  ProgramBuilder b;
  b.storeImm(addr::SwitchId, 5);
  const auto program = *b.build();

  const auto result = verify(program);
  EXPECT_FALSE(result.ok());
  ASSERT_GE(result.errors, 1u);
  EXPECT_EQ(result.diagnostics[0].check, Check::WritePermission);
  EXPECT_TRUE(anyMessageContains(result, "read-only statistic"));

  // Toggling the check off accepts the program (the caller opted out).
  VerifyOptions opts;
  opts.checks = kAllChecks & ~checkBit(Check::WritePermission);
  EXPECT_TRUE(verify(program, MemoryMap::standard(), opts).ok());
}

TEST(Verifier, UseBeforeInitOnOneOfTwoPaths) {
  // Word 2 is written only on the path where the CEXEC predicate holds.
  // Hop 1 reads it definitely-uninitialized; from hop 2 on, the join of
  // the two hop-1 exits makes the read path-dependent (Maybe).
  ProgramBuilder b;
  b.store(kSramBase, 2);                    // reads [Packet:2]
  b.cexec(addr::SwitchId, 0xffffffffu, 1);  // imms occupy words 0, 1
  b.load(addr::SwitchId, 2);                // writes [Packet:2] if reached
  b.reserve(1);
  const auto result = verify(*b.build(), MemoryMap::standard(), {.maxHops = 2});

  EXPECT_TRUE(result.ok());  // wire zero-fill: silent zero, not a fault
  EXPECT_EQ(result.warnings, 2u);
  EXPECT_TRUE(anyMessageContains(result, "no path initializes"));
  EXPECT_TRUE(anyMessageContains(result, "CEXEC-skipped"));
}

TEST(Verifier, WerrorUpgradesWarnings) {
  ProgramBuilder b;
  b.store(kSramBase, 1);  // reads uninitialized [Packet:1]
  b.reserve(2);
  const auto program = *b.build();

  EXPECT_TRUE(verify(program).ok());
  EXPECT_FALSE(verify(program, MemoryMap::standard(), {.werror = true}).ok());
}

TEST(Verifier, BudgetWarningIsTunable) {
  ProgramBuilder b;
  for (int i = 0; i < 6; ++i) b.push(addr::SwitchId);
  b.reserve(48);
  const auto program = *b.build();

  const auto result = verify(program);
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(anyMessageContains(result, "instruction budget"));

  VerifyOptions relaxed;
  relaxed.budgetInstructions = 10;
  EXPECT_EQ(verify(program, MemoryMap::standard(), relaxed).warnings, 0u);
}

TEST(Verifier, AssembleVerifyHookRejectsWithSourceLine) {
  const std::string_view src =
      "# comment\n"
      ".reserve 1\n"
      "LOAD [Switch:SwitchID], [Packet:0]\n"
      "STORE [Switch:SwitchID], [Packet:0]\n";
  AssembleOptions opts;
  opts.verify = true;
  const auto result = assemble(src, MemoryMap::standard(), opts);
  const auto* err = std::get_if<AssemblyError>(&result);
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->line, 4);  // the STORE, not end-of-file
  EXPECT_NE(err->message.find("verify:"), std::string::npos);
  EXPECT_NE(err->message.find("write-permission"), std::string::npos);
}

TEST(Verifier, DiagnosticsCarryAssemblerLines) {
  const std::string_view src =
      ".reserve 1\n"
      "PUSH [Switch:SwitchID]\n"
      "PUSH [Switch:SwitchID]\n";
  std::vector<int> lines;
  AssembleOptions aopts;
  aopts.outInstructionLines = &lines;
  const auto assembled = assemble(src, MemoryMap::standard(), aopts);
  ASSERT_TRUE(std::holds_alternative<Program>(assembled));
  ASSERT_EQ(lines, (std::vector<int>{2, 3}));

  VerifyOptions vopts;
  vopts.maxHops = 1;
  vopts.instructionLines = lines;
  const auto result =
      verify(std::get<Program>(assembled), MemoryMap::standard(), vopts);
  ASSERT_FALSE(result.ok());  // second PUSH overflows the 1-word reserve
  EXPECT_EQ(result.diagnostics[0].line, 3);
}

// ------------------------------------------- differential property test

// Random programs biased toward plausible switch addresses so a useful
// fraction passes verification; the rest exercises the rejection paths.
Program randomCandidateProgram(sim::Rng& rng) {
  static constexpr std::uint16_t kPool[] = {
      addr::SwitchId,       addr::QueueBytes,  addr::TimeLo,
      addr::LinkCapacityMbps, addr::MatchedEntryId, addr::InputPort,
      addr::TxUtilization,  addr::PortQueueBytes, addr::RcpRateRegister,
      kSramBase,            kSramBase + 9,     kPortScratchBase + 3,
  };
  ProgramBuilder b;
  const auto instrs = rng.uniformInt(0, 8);
  for (std::int64_t i = 0; i < instrs; ++i) {
    const auto op = static_cast<Opcode>(rng.uniformInt(0, 10));
    auto addr16 = rng.bernoulli(0.85)
                      ? kPool[rng.uniformInt(0, std::size(kPool) - 1)]
                      : static_cast<std::uint16_t>(rng.uniformInt(0, 0xffff));
    auto off = static_cast<std::uint8_t>(rng.uniformInt(0, 12));
    if (op == Opcode::Nop) {
      addr16 = 0;
      off = 0;
    }
    if (op == Opcode::Push || op == Opcode::Pop) off = 0;
    b.raw({op, addr16, off});
  }
  b.task(static_cast<std::uint16_t>(rng.uniformInt(0, 3)));
  if (rng.bernoulli(0.3)) {
    b.mode(AddressingMode::Hop);
    b.perHop(static_cast<std::uint8_t>(rng.uniformInt(1, 4)));
  }
  b.reserve(static_cast<std::uint8_t>(rng.uniformInt(0, 32)));
  return *b.build();
}

TEST(VerifierDifferential, AcceptedProgramsNeverFaultOnTheWire) {
  // Soundness contract: zero errors against the standard map and
  // maxHops = 3 means three TCPU executions cannot raise any core::Fault.
  // Switches in the testbed expose exactly MemoryMap::standard() with open
  // scratch, so every accepted program must echo clean.
  Testbed tb;
  buildChain(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(1)});
  sim::Rng rng(0xd1ffe7u);

  VerifyOptions vopts;
  vopts.maxHops = 3;

  const int kCandidates = 1500;
  std::vector<Program> accepted;
  for (int i = 0; i < kCandidates; ++i) {
    auto program = randomCandidateProgram(rng);
    if (verify(program, MemoryMap::standard(), vopts).ok()) {
      accepted.push_back(std::move(program));
    }
  }
  // The generator must not degenerate into rejecting (or accepting)
  // everything, or the property loses its teeth.
  ASSERT_GE(accepted.size(), 100u);
  ASSERT_LT(accepted.size(), static_cast<std::size_t>(kCandidates));

  std::size_t echoed = 0;
  tb.host(0).onTppResult([&](const ExecutedTpp& t) {
    ++echoed;
    EXPECT_EQ(t.header.faultCode, Fault::None)
        << "verifier-accepted program faulted with code "
        << static_cast<int>(t.header.faultCode) << " (task "
        << t.header.taskId << ", echo " << echoed << ")";
    EXPECT_EQ(t.header.flags & kFlagFaulted, 0);
  });
  for (const auto& program : accepted) {
    tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
  }
  tb.sim().run();
  EXPECT_EQ(echoed, accepted.size());
}

}  // namespace
}  // namespace tpp::core
