#include <gtest/gtest.h>

#include <vector>

#include "src/net/byte_io.hpp"
#include "src/net/ethernet.hpp"
#include "src/net/ipv4.hpp"
#include "src/net/mac_address.hpp"

namespace tpp::net {
namespace {

TEST(ByteIo, Be16RoundTrip) {
  std::vector<std::uint8_t> buf(4, 0);
  putBe16(buf, 1, 0xBEEF);
  EXPECT_EQ(buf[1], 0xBE);
  EXPECT_EQ(buf[2], 0xEF);
  EXPECT_EQ(getBe16(buf, 1), 0xBEEF);
}

TEST(ByteIo, Be32RoundTrip) {
  std::vector<std::uint8_t> buf(8, 0);
  putBe32(buf, 2, 0xDEADBEEF);
  EXPECT_EQ(getBe32(buf, 2), 0xDEADBEEFu);
  EXPECT_EQ(buf[2], 0xDE);
  EXPECT_EQ(buf[5], 0xEF);
}

TEST(ByteIo, Be64RoundTrip) {
  std::vector<std::uint8_t> buf(8, 0);
  putBe64(buf, 0, 0x0123456789ABCDEFULL);
  EXPECT_EQ(getBe64(buf, 0), 0x0123456789ABCDEFULL);
}

TEST(ByteIo, TruncatedReadsReturnNullopt) {
  std::vector<std::uint8_t> buf(3, 0);
  EXPECT_FALSE(getBe16(buf, 2).has_value());
  EXPECT_FALSE(getBe32(buf, 0).has_value());
  EXPECT_FALSE(getBe64(buf, 0).has_value());
  EXPECT_TRUE(getBe16(buf, 1).has_value());
}

class ByteIoValues : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ByteIoValues, Be32Identity) {
  std::vector<std::uint8_t> buf(4, 0);
  putBe32(buf, 0, GetParam());
  EXPECT_EQ(getBe32(buf, 0), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Boundary, ByteIoValues,
                         ::testing::Values(0u, 1u, 0x7fffffffu, 0x80000000u,
                                           0xffffffffu, 0x00ff00ffu));

TEST(MacAddress, FromIndexIsLocalAndUnique) {
  const auto a = MacAddress::fromIndex(1);
  const auto b = MacAddress::fromIndex(2);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.isMulticast());
  EXPECT_EQ(a.bytes()[0], 0x02);  // locally administered
}

TEST(MacAddress, ParseAndFormatRoundTrip) {
  const auto m = MacAddress::parse("02:00:00:00:00:2a");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->toString(), "02:00:00:00:00:2a");
  EXPECT_EQ(m->toU64(), 0x02000000002aULL);
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddress::parse(""));
  EXPECT_FALSE(MacAddress::parse("02:00:00:00:00"));
  EXPECT_FALSE(MacAddress::parse("02:00:00:00:00:zz"));
  EXPECT_FALSE(MacAddress::parse("02:00:00:00:00:2a:ff"));
  EXPECT_FALSE(MacAddress::parse("0200:00:00:00:2a"));
}

TEST(MacAddress, BroadcastProperties) {
  EXPECT_TRUE(MacAddress::broadcast().isBroadcast());
  EXPECT_TRUE(MacAddress::broadcast().isMulticast());
  EXPECT_FALSE(MacAddress::fromIndex(5).isBroadcast());
}

TEST(Ethernet, HeaderRoundTrip) {
  std::vector<std::uint8_t> buf(kEthernetHeaderSize, 0);
  EthernetHeader h{MacAddress::fromIndex(1), MacAddress::fromIndex(2),
                   kEtherTypeTpp};
  h.write(buf);
  const auto parsed = EthernetHeader::parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->etherType, kEtherTypeTpp);
}

TEST(Ethernet, ParseRejectsShortBuffer) {
  std::vector<std::uint8_t> buf(13, 0);
  EXPECT_FALSE(EthernetHeader::parse(buf));
}

TEST(Ipv4Address, FormatsDottedQuad) {
  EXPECT_EQ(Ipv4Address::fromOctets(10, 0, 0, 7).toString(), "10.0.0.7");
  EXPECT_EQ(Ipv4Address::forHost(300).toString(), "10.0.1.44");
}

TEST(Ipv4, HeaderRoundTripWithChecksum) {
  std::vector<std::uint8_t> buf(kIpv4HeaderSize, 0);
  Ipv4Header h;
  h.totalLength = 123;
  h.identification = 7;
  h.ttl = 63;
  h.src = Ipv4Address::forHost(1);
  h.dst = Ipv4Address::forHost(2);
  h.write(buf);
  const auto parsed = Ipv4Header::parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->totalLength, 123);
  EXPECT_EQ(parsed->identification, 7);
  EXPECT_EQ(parsed->ttl, 63);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv4, CorruptionFailsChecksum) {
  std::vector<std::uint8_t> buf(kIpv4HeaderSize, 0);
  Ipv4Header h;
  h.totalLength = 40;
  h.src = Ipv4Address::forHost(1);
  h.dst = Ipv4Address::forHost(2);
  h.write(buf);
  buf[16] ^= 0x01;  // flip one dst bit
  EXPECT_FALSE(Ipv4Header::parse(buf));
}

TEST(Ipv4, ChecksumOfHeaderWithChecksumIsZero) {
  std::vector<std::uint8_t> buf(kIpv4HeaderSize, 0);
  Ipv4Header h;
  h.totalLength = 20;
  h.write(buf);
  EXPECT_EQ(internetChecksum(buf), 0);
}

TEST(Udp, HeaderRoundTrip) {
  std::vector<std::uint8_t> buf(kUdpHeaderSize, 0);
  UdpHeader u{1234, 5678, 100};
  u.write(buf);
  const auto parsed = UdpHeader::parse(buf);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->srcPort, 1234);
  EXPECT_EQ(parsed->dstPort, 5678);
  EXPECT_EQ(parsed->length, 100);
}

TEST(Udp, ParseRejectsShortBuffer) {
  std::vector<std::uint8_t> buf(7, 0);
  EXPECT_FALSE(UdpHeader::parse(buf));
}

}  // namespace
}  // namespace tpp::net
