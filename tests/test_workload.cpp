#include "src/workload/generators.hpp"

#include <gtest/gtest.h>

#include "src/host/topology.hpp"

namespace tpp::workload {
namespace {

using host::Testbed;

struct StarFixture : public ::testing::Test {
  Testbed tb;
  void SetUp() override {
    buildStar(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(1)});
  }
  host::Host& receiver() { return tb.host(4); }
};

TEST_F(StarFixture, OnOffSenderAlternates) {
  OnOffSender::Config cfg;
  cfg.flow.dstMac = receiver().mac();
  cfg.flow.dstIp = receiver().ip();
  cfg.peakRateBps = 100e6;
  cfg.meanOn = sim::Time::ms(2);
  cfg.meanOff = sim::Time::ms(2);
  OnOffSender sender(tb.host(0), cfg, sim::Rng(1));
  sender.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(200));
  sender.stop();
  const double duty = 0.5;
  const double expected = 100e6 * 0.2 * duty / 8.0;
  // Wide tolerance: on/off holding times are random.
  EXPECT_GT(static_cast<double>(sender.bytesSent()), expected * 0.4);
  EXPECT_LT(static_cast<double>(sender.bytesSent()), expected * 1.6);
}

TEST_F(StarFixture, OnOffDeterministicAcrossRuns) {
  auto run = [this](std::uint64_t seed) {
    Testbed tb2;
    buildStar(tb2, 4, host::LinkParams{1'000'000'000, sim::Time::us(1)});
    OnOffSender::Config cfg;
    cfg.flow.dstMac = tb2.host(4).mac();
    cfg.flow.dstIp = tb2.host(4).ip();
    OnOffSender sender(tb2.host(0), cfg, sim::Rng(seed));
    sender.start(sim::Time::zero());
    tb2.sim().run(sim::Time::ms(100));
    return sender.bytesSent();
  };
  EXPECT_EQ(run(7), run(7));
  (void)tb;
}

TEST_F(StarFixture, IncastFiresAllSendersAtOnce) {
  IncastBurst::Config cfg;
  cfg.dstMac = receiver().mac();
  cfg.dstIp = receiver().ip();
  cfg.burstBytes = 50'000;
  cfg.lineRateBps = 1e9;
  IncastBurst burst({&tb.host(0), &tb.host(1), &tb.host(2), &tb.host(3)},
                    cfg);
  burst.start(sim::Time::ms(1));
  tb.sim().run();
  EXPECT_EQ(burst.burstsFired(), 1u);
  // All four bursts arrive in full.
  EXPECT_GE(receiver().bytesReceived(), 4u * 50'000u);
}

TEST_F(StarFixture, IncastBuildsQueueAtReceiverPort) {
  IncastBurst::Config cfg;
  cfg.dstMac = receiver().mac();
  cfg.dstIp = receiver().ip();
  cfg.burstBytes = 100'000;
  IncastBurst burst({&tb.host(0), &tb.host(1), &tb.host(2), &tb.host(3)},
                    cfg);
  burst.start(sim::Time::zero());
  // Sample the receiver-port queue while the burst is in flight.
  std::uint64_t peak = 0;
  for (int t = 0; t < 40; ++t) {
    tb.sim().schedule(sim::Time::us(50 * t), [&] {
      peak = std::max(peak, tb.sw(0).portQueueBytes(4));
    });
  }
  tb.sim().run();
  // 4:1 fan-in at equal rates must queue about 3/4 of the data.
  EXPECT_GT(peak, 100'000u);
}

TEST_F(StarFixture, PeriodicIncastRepeats) {
  IncastBurst::Config cfg;
  cfg.dstMac = receiver().mac();
  cfg.dstIp = receiver().ip();
  cfg.burstBytes = 10'000;
  cfg.period = sim::Time::ms(10);
  IncastBurst burst({&tb.host(0), &tb.host(1)}, cfg);
  burst.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(35));
  EXPECT_EQ(burst.burstsFired(), 4u);  // t = 0, 10, 20, 30 ms
}

TEST_F(StarFixture, PoissonGeneratorOffersFlows) {
  PoissonFlowGenerator::Config cfg;
  cfg.dstMac = receiver().mac();
  cfg.dstIp = receiver().ip();
  cfg.flowsPerSecond = 500;
  cfg.minFlowBytes = 2000;
  cfg.maxFlowBytes = 20'000;
  PoissonFlowGenerator gen({&tb.host(0), &tb.host(1), &tb.host(2)}, cfg,
                           sim::Rng(5));
  gen.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(100));
  gen.stop();
  tb.sim().run();
  EXPECT_NEAR(static_cast<double>(gen.flowsStarted()), 50.0, 25.0);
  EXPECT_GT(gen.bytesOffered(), 0u);
  EXPECT_GT(receiver().bytesReceived(), gen.bytesOffered() / 2);
}

TEST_F(StarFixture, PoissonDeterministicBySeed) {
  auto run = [this](std::uint64_t seed) {
    Testbed tb2;
    buildStar(tb2, 2, host::LinkParams{1'000'000'000, sim::Time::us(1)});
    PoissonFlowGenerator::Config cfg;
    cfg.dstMac = tb2.host(2).mac();
    cfg.dstIp = tb2.host(2).ip();
    cfg.flowsPerSecond = 300;
    PoissonFlowGenerator gen({&tb2.host(0), &tb2.host(1)}, cfg,
                             sim::Rng(seed));
    gen.start(sim::Time::zero());
    tb2.sim().run(sim::Time::ms(50));
    return std::pair{gen.flowsStarted(), gen.bytesOffered()};
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
  (void)tb;
}

}  // namespace
}  // namespace tpp::workload
