#include "tests/golden_scenarios.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/apps/microburst.hpp"
#include "src/apps/ndb.hpp"
#include "src/apps/rcpstar.hpp"
#include "src/host/flow.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/trace.hpp"
#include "src/workload/generators.hpp"

namespace tpp::test {
namespace {

// Small enough that three checked-in goldens stay under ~64 KiB each, big
// enough that none of the scenarios below wraps (wrap would still be
// deterministic, but whole-run traces make diffs readable).
constexpr std::size_t kGoldenRing = 2048;

// Arms the recorder and drives the run through whichever path the runner
// mode names. ShardedWrapper on these (unsharded) testbeds means a 1-shard
// ShardedSimulator + merged per-shard recorders — byte-identity with
// Legacy is exactly what the wrapper golden tests pin.
struct TraceArm {
  host::Testbed& tb;
  GoldenRunner mode;
  sim::Tracer legacy{kGoldenRing};
  host::ShardedTrace sharded;

  TraceArm(host::Testbed& t, GoldenRunner m)
      : tb(t), mode(m), sharded(t.sharded().shardCount(), kGoldenRing) {
    if (mode == GoldenRunner::Legacy) {
      host::armTracing(tb, legacy);
    } else {
      host::armTracing(tb, sharded);
    }
  }
  void run(sim::Time until = sim::Time::max()) {
    if (mode == GoldenRunner::Legacy) {
      tb.sim().run(until);
    } else {
      tb.run(until);
    }
  }
  std::vector<std::uint8_t> bytes() const {
    return mode == GoldenRunner::Legacy ? legacy.serialize()
                                        : sharded.merged();
  }
};

// §2.1: incast bursts into a shallow star egress, monitored by TPP probes.
std::vector<std::uint8_t> runMicroburst(GoldenRunner mode) {
  host::Testbed tb;
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 256 * 1024;
  buildStar(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(2)}, cfg);
  TraceArm arm(tb, mode);

  host::Host& receiver = tb.host(2);
  workload::IncastBurst::Config icfg;
  icfg.dstMac = receiver.mac();
  icfg.dstIp = receiver.ip();
  icfg.burstBytes = 8'000;
  icfg.period = sim::Time::ms(1);
  workload::IncastBurst incast({&tb.host(0), &tb.host(1)}, icfg);
  incast.start(sim::Time::us(500));

  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = receiver.mac();
  mcfg.dstIp = receiver.ip();
  mcfg.interval = sim::Time::us(500);
  apps::MicroburstMonitor monitor(tb.host(0), mcfg);
  monitor.start(sim::Time::zero());

  arm.run(sim::Time::ms(3));
  monitor.stop();
  incast.stop();
  arm.run();
  return arm.bytes();
}

// §2.2: one RCP* controller adapting a paced flow over a single switch.
std::vector<std::uint8_t> runRcpStar(GoldenRunner mode) {
  host::Testbed tb;
  buildChain(tb, 1, host::LinkParams{10'000'000, sim::Time::us(50)});
  TraceArm arm(tb, mode);

  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.payloadBytes = 1000;
  spec.rateBps = 500e3;
  host::PacedFlow flow(tb.host(0), spec, /*flowId=*/1);

  apps::RcpStarController::Config ccfg;
  ccfg.params.alpha = 0.5;
  ccfg.params.beta = 1.0;
  ccfg.params.rttSeconds = 0.01;
  ccfg.period = sim::Time::ms(5);
  ccfg.probesPerPeriod = 2;
  ccfg.dstMac = spec.dstMac;
  ccfg.dstIp = spec.dstIp;
  apps::RcpStarController controller(tb.host(0), flow, ccfg);

  flow.start(sim::Time::zero());
  controller.start(sim::Time::zero());
  arm.run(sim::Time::ms(25));
  controller.stop();
  flow.stop();
  arm.run();
  return arm.bytes();
}

// §2.3: path tracing over a 3-switch chain, with a mid-run link-down
// window so the golden also pins the fault-verdict record stream.
std::vector<std::uint8_t> runNdb(GoldenRunner mode) {
  host::Testbed tb;
  buildChain(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(1)});
  TraceArm arm(tb, mode);

  sim::FaultInjector inj(tb.sim(), /*seed=*/7);
  auto& mid = inj.link("sw1->sw2");
  tb.linkAt(2).aToB().setFaultState(&mid);
  inj.linkDownWindow(mid, sim::Time::us(900), sim::Time::us(2100));

  apps::TraceCollector collector(tb.host(1));
  const auto sendProbe = [&] {
    tb.host(0).sendUdpWithTpp(tb.host(1).mac(), tb.host(1).ip(), 5000, 5000,
                              {}, apps::makeTraceProgram());
  };
  tb.sim().scheduleAt(sim::Time::us(200), sendProbe);   // clean pass
  tb.sim().scheduleAt(sim::Time::us(1500), sendProbe);  // dies at sw1->sw2
  tb.sim().scheduleAt(sim::Time::us(3000), sendProbe);  // clean again
  arm.run();
  return arm.bytes();
}

}  // namespace

const std::vector<std::string>& goldenScenarioNames() {
  static const std::vector<std::string> kNames = {"microburst", "rcpstar",
                                                  "ndb"};
  return kNames;
}

std::vector<std::uint8_t> runGoldenScenario(const std::string& name,
                                            GoldenRunner runner) {
  if (name == "microburst") return runMicroburst(runner);
  if (name == "rcpstar") return runRcpStar(runner);
  if (name == "ndb") return runNdb(runner);
  std::fprintf(stderr, "unknown golden scenario \"%s\"\n", name.c_str());
  std::abort();
}

std::string goldenFileName(const std::string& name) {
  return name + ".tpptrace";
}

}  // namespace tpp::test
