#include "src/apps/ndb.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/host/topology.hpp"

namespace tpp::apps {
namespace {

using host::Testbed;

TEST(TraceProgram, MatchesPaperSection23) {
  const auto p = makeTraceProgram(5);
  ASSERT_EQ(p.instructions.size(), 3u);
  EXPECT_EQ(p.instructions[0].addr, core::addr::SwitchId);
  EXPECT_EQ(p.instructions[1].addr, core::addr::MatchedEntryId);
  EXPECT_EQ(p.instructions[2].addr, core::addr::InputPort);
  EXPECT_EQ(p.pmemWords, 15);
}

TEST(HopTraceFields, UnpacksVersionAndIndex) {
  HopTrace h;
  h.matchedEntryId = asic::packEntryId(0x0042, 0x0007);
  EXPECT_EQ(h.entryIndex(), 0x0042);
  EXPECT_EQ(h.entryVersion(), 0x0007);
}

TEST(IntentStore, EmptyDivergenceOnExactMatch) {
  IntentStore intent;
  intent.setExpectedPath({{1, 100}, {2, 200}});
  PacketTrace trace;
  trace.hops = {{1, 100, 0}, {2, 200, 1}};
  EXPECT_TRUE(intent.check(trace).empty());
}

TEST(IntentStore, WildcardEntryAcceptsAnything) {
  IntentStore intent;
  intent.setExpectedPath({{1, 0}});
  PacketTrace trace;
  trace.hops = {{1, 0xdeadbeef, 3}};
  EXPECT_TRUE(intent.check(trace).empty());
}

TEST(IntentStore, DetectsWrongSwitch) {
  IntentStore intent;
  intent.setExpectedPath({{1, 100}, {2, 200}});
  PacketTrace trace;
  trace.hops = {{1, 100, 0}, {9, 200, 1}};
  const auto d = intent.check(trace);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, IntentStore::DivergenceKind::WrongSwitch);
  EXPECT_EQ(d[0].hop, 1u);
  EXPECT_EQ(d[0].observed, 9u);
}

TEST(IntentStore, DetectsStaleVersionVsWrongEntry) {
  IntentStore intent;
  intent.setExpectedPath({{1, asic::packEntryId(5, 2)}});
  PacketTrace stale;
  stale.hops = {{1, asic::packEntryId(5, 1), 0}};  // old version, same entry
  auto d = intent.check(stale);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, IntentStore::DivergenceKind::StaleVersion);

  PacketTrace wrong;
  wrong.hops = {{1, asic::packEntryId(6, 2), 0}};  // different entry
  d = intent.check(wrong);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, IntentStore::DivergenceKind::WrongEntry);
}

TEST(IntentStore, DetectsPathLengthMismatch) {
  IntentStore intent;
  intent.setExpectedPath({{1, 0}, {2, 0}});
  PacketTrace trace;
  trace.hops = {{1, 0, 0}};
  const auto d = intent.check(trace);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, IntentStore::DivergenceKind::PathLengthMismatch);
}

TEST(DivergenceNames, Distinct) {
  EXPECT_EQ(divergenceKindName(IntentStore::DivergenceKind::WrongSwitch),
            "wrong-switch");
  EXPECT_EQ(divergenceKindName(IntentStore::DivergenceKind::StaleVersion),
            "stale-version");
}

TEST(OverheadModels, TppBeatsCopiesOnEveryPathLength) {
  NdbCopyOverheadModel copies;
  for (std::size_t hops = 1; hops <= 7; ++hops) {
    EXPECT_LT(tppTraceBytesPerPacket(hops), copies.bytesPerPacket(hops))
        << hops << " hops";
  }
}

// ------------------------- end-to-end tracing on a simulated network

struct NdbFixture : public ::testing::Test {
  Testbed tb;
  // One collector for the fixture's lifetime: handlers registered on a
  // host cannot be unregistered, so the collector must outlive the test.
  std::unique_ptr<TraceCollector> collector;

  void SetUp() override {
    buildChain(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(1)});
    collector = std::make_unique<TraceCollector>(tb.host(1));
  }

  PacketTrace traceOnce() {
    const auto before = collector->count();
    tb.host(0).sendUdpWithTpp(tb.host(1).mac(), tb.host(1).ip(), 5000, 5000,
                              {}, makeTraceProgram());
    tb.sim().run();
    EXPECT_EQ(collector->count(), before + 1);
    return collector->traces().back();
  }

  // Builds the control-plane intent from the switches' current L3 state.
  IntentStore currentIntent() {
    IntentStore intent;
    std::vector<IntentStore::ExpectedHop> path;
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      const auto match = tb.sw(s).l3().match(tb.host(1).ip());
      path.push_back({tb.sw(s).config().switchId, match->entryId});
    }
    intent.setExpectedPath(path);
    return intent;
  }
};

TEST_F(NdbFixture, TraceRecordsEveryHop) {
  const auto trace = traceOnce();
  ASSERT_EQ(trace.hops.size(), 3u);
  EXPECT_FALSE(trace.faulted);
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_EQ(trace.hops[h].switchId, tb.sw(h).config().switchId);
    EXPECT_EQ(trace.hops[h].inputPort, 0u);
  }
}

TEST_F(NdbFixture, CleanNetworkMatchesIntent) {
  const auto intent = currentIntent();
  const auto trace = traceOnce();
  EXPECT_TRUE(intent.check(trace).empty());
}

TEST_F(NdbFixture, SilentRuleChangeIsDetectedAsStale) {
  const auto intent = currentIntent();
  // The "hardware" updates a rule behind the control plane's back: re-add
  // the same /32 with a different port (bumps the entry version).
  tb.sw(1).l3().add(tb.host(1).ip(), 32, 1);
  const auto trace = traceOnce();
  const auto d = intent.check(trace);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, IntentStore::DivergenceKind::StaleVersion);
  EXPECT_EQ(d[0].hop, 1u);
}

TEST_F(NdbFixture, ReRoutingDetectedAsWrongEntry) {
  const auto intent = currentIntent();
  // A TCAM rule hijacks the flow at switch 1 (still forwards correctly,
  // but through a different table entry).
  asic::TcamKey k;
  k.ipDst = {tb.host(1).ip(), 32};
  tb.sw(1).tcam().add(k, asic::TcamAction{1}, 100);
  const auto trace = traceOnce();
  const auto d = intent.check(trace);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, IntentStore::DivergenceKind::WrongEntry);
}


TEST_F(NdbFixture, GoldenTraceSnapshotsIntent) {
  // Operators snapshot intent from a known-good trace instead of mirroring
  // switch tables.
  const auto golden = traceOnce();
  const auto intent = IntentStore::fromGoldenTrace(golden);
  EXPECT_TRUE(intent.check(traceOnce()).empty());
  // Drift after the snapshot is detected against the golden record.
  tb.sw(1).l3().add(tb.host(1).ip(), 32, 1);
  const auto d = intent.check(traceOnce());
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].kind, IntentStore::DivergenceKind::StaleVersion);
}

TEST_F(NdbFixture, CollectorAccumulatesPerPacketTraces) {
  for (int i = 0; i < 5; ++i) {
    tb.host(0).sendUdpWithTpp(tb.host(1).mac(), tb.host(1).ip(), 5000, 5000,
                              {}, makeTraceProgram());
  }
  tb.sim().run();
  EXPECT_EQ(collector->count(), 5u);
  collector->clear();
  EXPECT_EQ(collector->count(), 0u);
}

}  // namespace
}  // namespace tpp::apps
