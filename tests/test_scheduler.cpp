// Egress scheduling policies: round-robin fairness vs strict priority.
#include <gtest/gtest.h>

#include "src/host/flow.hpp"
#include "src/host/topology.hpp"

namespace tpp::asic {
namespace {

using host::Testbed;

// Two senders, one receiver behind a 10 Mb/s port; sender i's traffic is
// steered into queue `queueOf(i)` via TCAM.
struct SchedFixture {
  Testbed tb;
  std::unique_ptr<host::PacedFlow> f0, f1;

  explicit SchedFixture(SchedulerPolicy policy) {
    asic::SwitchConfig cfg;
    cfg.scheduler = policy;
    cfg.bufferPerQueueBytes = 1 << 20;
    host::LinkParams edge{1'000'000'000, sim::Time::us(1)};
    buildStar(tb, 2, edge, cfg);
    // Replace the receiver-facing link with a slow one? Simpler: send at
    // 2x the receiver link rate so the egress port congests. Star links
    // are homogeneous, so instead steer by source into queues and
    // oversubscribe with high offered load from both senders.
    TcamKey k0;
    k0.ipSrc = {tb.host(0).ip(), 32};
    tb.sw(0).tcam().add(k0, TcamAction{2, std::uint8_t{0}, false}, 10);
    TcamKey k1;
    k1.ipSrc = {tb.host(1).ip(), 32};
    tb.sw(0).tcam().add(k1, TcamAction{2, std::uint8_t{3}, false}, 10);

    for (int i = 0; i < 2; ++i) {
      host::FlowSpec spec;
      spec.dstMac = tb.host(2).mac();
      spec.dstIp = tb.host(2).ip();
      spec.srcPort = static_cast<std::uint16_t>(24000 + i);
      spec.dstPort = spec.srcPort;
      spec.rateBps = 800e6;  // 2 x 800M into a 1G port: sustained backlog
      auto flow = std::make_unique<host::PacedFlow>(tb.host(i), spec, i + 1);
      (i == 0 ? f0 : f1) = std::move(flow);
    }
  }

  // Runs and returns (queue0 tx bytes, queue3 tx bytes) measured at the
  // receiver by source port.
  std::pair<std::uint64_t, std::uint64_t> run(sim::Time horizon) {
    std::uint64_t q0 = 0, q3 = 0;
    tb.host(2).bindUdp(24000, [&](const host::UdpDatagram& d) {
      q0 += d.payload.size();
    });
    tb.host(2).bindUdp(24001, [&](const host::UdpDatagram& d) {
      q3 += d.payload.size();
    });
    f0->start(sim::Time::zero());
    f1->start(sim::Time::zero());
    tb.sim().run(horizon);
    f0->stop();
    f1->stop();
    return {q0, q3};
  }
};

TEST(Scheduler, RoundRobinSharesEvenly) {
  SchedFixture fx(SchedulerPolicy::RoundRobin);
  const auto [q0, q3] = fx.run(sim::Time::ms(100));
  ASSERT_GT(q0, 0u);
  ASSERT_GT(q3, 0u);
  const double ratio = static_cast<double>(q0) / static_cast<double>(q3);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(Scheduler, StrictPriorityStarvesLowQueue) {
  SchedFixture fx(SchedulerPolicy::StrictPriority);
  const auto [q0, q3] = fx.run(sim::Time::ms(100));
  ASSERT_GT(q0, 0u);
  // Queue 0 (sender 0) takes nearly everything; queue 3 only drains when
  // queue 0 is momentarily empty (f0 offers only 80% of line rate).
  EXPECT_GT(static_cast<double>(q0),
            3.0 * static_cast<double>(std::max<std::uint64_t>(q3, 1)));
}

TEST(Scheduler, StrictPriorityDeliversLowLatencyForHighQueue) {
  // Background blast in queue 3; a single high-priority packet in queue 0
  // overtakes the backlog.
  asic::SwitchConfig cfg;
  cfg.scheduler = SchedulerPolicy::StrictPriority;
  cfg.bufferPerQueueBytes = 1 << 20;
  Testbed tb;
  buildStar(tb, 2, host::LinkParams{100'000'000, sim::Time::us(1)}, cfg);
  TcamKey low;
  low.ipSrc = {tb.host(1).ip(), 32};
  tb.sw(0).tcam().add(low, TcamAction{2, std::uint8_t{3}, false}, 10);

  host::FlowSpec blast;
  blast.dstMac = tb.host(2).mac();
  blast.dstIp = tb.host(2).ip();
  blast.srcPort = 25000;
  blast.dstPort = 25000;
  blast.rateBps = 300e6;  // 3x the egress: deep queue-3 backlog
  host::PacedFlow bg(tb.host(1), blast, 9);
  bg.start(sim::Time::zero());

  sim::Time sentAt, gotAt;
  tb.host(2).bindUdp(26000, [&](const host::UdpDatagram&) {
    gotAt = tb.sim().now();
  });
  tb.sim().schedule(sim::Time::ms(20), [&] {
    sentAt = tb.sim().now();
    tb.host(0).sendUdp(tb.host(2).mac(), tb.host(2).ip(), 26000, 26000, {});
  });
  tb.sim().run(sim::Time::ms(40));
  bg.stop();

  ASSERT_GT(gotAt, sim::Time::zero());
  // One in-service low-priority packet at most delays us ~ 82 us + our own
  // serialization; far below the multi-ms queue-3 backlog.
  EXPECT_LT((gotAt - sentAt).toMicros(), 300.0);
}

}  // namespace
}  // namespace tpp::asic
