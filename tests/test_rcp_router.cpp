#include "src/rcp/rcp_router.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/memory_map.hpp"
#include "src/host/flow.hpp"
#include "src/host/topology.hpp"

namespace tpp::rcp {
namespace {

using host::Testbed;

constexpr std::uint64_t kBottleneck = 10'000'000;  // 10 Mb/s

struct RouterFixture : public ::testing::Test {
  Testbed tb;
  std::unique_ptr<RcpRouter> router;

  void SetUp() override {
    asic::SwitchConfig scfg;
    // Keep the bottleneck buffer at ~50 ms of drain time so queue
    // excursions stay within the control loop's grip.
    scfg.bufferPerQueueBytes = 64 * 1024;
    buildDumbbell(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
    RcpRouter::Config cfg;
    cfg.params.alpha = 0.5;
    cfg.params.beta = 1.0;
    cfg.params.rttSeconds = 0.05;
    cfg.period = sim::Time::ms(50);
    cfg.managedPorts = {3};  // bottleneck egress of the left switch
    router = std::make_unique<RcpRouter>(tb.sw(0), cfg);
    tb.sw(0).setEgressInterceptor(router.get());
    router->start();
  }

  // A greedy baseline-RCP flow: stamps "infinite" demand, obeys whatever
  // rate the network granted on the previous packet.
  struct GreedyFlow {
    std::unique_ptr<host::PacedFlow> flow;

    GreedyFlow(Testbed& tb, std::size_t sender, std::size_t receiver,
               std::uint16_t port) {
      host::FlowSpec spec;
      spec.dstMac = tb.host(receiver).mac();
      spec.dstIp = tb.host(receiver).ip();
      spec.srcPort = port;
      spec.dstPort = port;
      spec.payloadBytes = 1000;
      spec.rateBps = 100e3;  // conservative start
      flow = std::make_unique<host::PacedFlow>(tb.host(sender), spec, port);
      flow->setPacketHook([](net::Packet& p) {
        // The RCP header rides at the front of the UDP payload.
        const std::size_t off = net::kEthernetHeaderSize +
                                net::kIpv4HeaderSize + net::kUdpHeaderSize;
        RcpHeader h;  // rateKbps defaults to "infinite demand"
        h.write(p.span().subspan(off));
      });
      auto* flowPtr = flow.get();
      tb.host(receiver).bindUdp(port, [flowPtr](const host::UdpDatagram& d) {
        // Instantaneous receiver→sender feedback (models the ACK path).
        if (const auto h = RcpHeader::parse(d.payload)) {
          if (h->rateKbps != 0xffffffff) {
            flowPtr->setRateBps(static_cast<double>(h->rateKbps) * 1000.0);
          }
        }
      });
    }
  };
};

TEST_F(RouterFixture, InitializesRegisterToCapacity) {
  EXPECT_EQ(tb.sw(0).scratchRead(core::addr::RcpRateRegister, 3),
            kBottleneck / 1000);
}

TEST_F(RouterFixture, StampsPassingRcpPackets) {
  GreedyFlow f(tb, 0, 3, 21000);
  f.flow->start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(200));
  f.flow->stop();
  EXPECT_GT(router->packetsStamped(), 0u);
}

TEST_F(RouterFixture, SingleFlowGetsFullCapacity) {
  GreedyFlow f(tb, 0, 3, 21000);
  f.flow->start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(5));
  f.flow->stop();
  EXPECT_NEAR(router->rateBps(3), static_cast<double>(kBottleneck),
              0.2 * static_cast<double>(kBottleneck));
  EXPECT_NEAR(f.flow->rateBps(), static_cast<double>(kBottleneck),
              0.25 * static_cast<double>(kBottleneck));
}

TEST_F(RouterFixture, TwoFlowsShareFairly) {
  GreedyFlow f1(tb, 0, 3, 21000);
  GreedyFlow f2(tb, 1, 4, 22000);
  f1.flow->start(sim::Time::zero());
  f2.flow->start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(8));
  // R(t) is the per-flow fair share: about C/2.
  EXPECT_NEAR(router->rateBps(3), kBottleneck / 2.0, 0.25 * kBottleneck);
  f1.flow->stop();
  f2.flow->stop();
}

TEST_F(RouterFixture, RateRecoversWhenFlowLeaves) {
  GreedyFlow f1(tb, 0, 3, 21000);
  GreedyFlow f2(tb, 1, 4, 22000);
  f1.flow->start(sim::Time::zero());
  f2.flow->start(sim::Time::zero());
  tb.sim().run(sim::Time::sec(6));
  f2.flow->stop();
  tb.sim().run(sim::Time::sec(12));
  EXPECT_NEAR(router->rateBps(3), static_cast<double>(kBottleneck),
              0.25 * static_cast<double>(kBottleneck));
  f1.flow->stop();
}

TEST_F(RouterFixture, RegistersOnlyModeDoesNotTouchPackets) {
  // Reconfigure: a second router instance in RCP*-support mode.
  RcpRouter::Config cfg;
  cfg.managedPorts = {3};
  cfg.stampPackets = false;
  RcpRouter quiet(tb.sw(0), cfg);
  tb.sw(0).setEgressInterceptor(&quiet);
  quiet.start();
  GreedyFlow f(tb, 0, 3, 21000);
  f.flow->start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(500));
  f.flow->stop();
  EXPECT_EQ(quiet.packetsStamped(), 0u);
  // Flow never hears a lower grant, keeps its initial rate.
  EXPECT_DOUBLE_EQ(f.flow->rateBps(), 100e3);
}

}  // namespace
}  // namespace tpp::rcp
