#include "src/net/packet.hpp"

#include <gtest/gtest.h>

namespace tpp::net {
namespace {

TEST(Packet, MakeWithFill) {
  auto p = Packet::make(64, 0xab);
  EXPECT_EQ(p->size(), 64u);
  EXPECT_EQ(p->bytes()[63], 0xab);
}

TEST(Packet, IdsAreUnique) {
  auto a = Packet::make(10);
  auto b = Packet::make(10);
  EXPECT_NE(a->id(), b->id());
}

TEST(Packet, CloneCopiesBytesAndMeta) {
  auto p = Packet::make(16, 0x5a);
  p->meta().inputPort = 3;
  p->meta().matchedEntryId = 0x00010002;
  p->flowId = 99;
  p->createdAt = sim::Time::ms(5);
  auto c = p->clone();
  EXPECT_EQ(c->bytes(), p->bytes());
  EXPECT_EQ(c->meta().inputPort, 3u);
  EXPECT_EQ(c->meta().matchedEntryId, 0x00010002u);
  EXPECT_EQ(c->flowId, 99u);
  EXPECT_EQ(c->createdAt, sim::Time::ms(5));
  EXPECT_NE(c->id(), p->id());  // a clone is a new packet
}

TEST(Packet, CloneIsDeep) {
  auto p = Packet::make(8, 0);
  auto c = p->clone();
  c->bytes()[0] = 0xff;
  EXPECT_EQ(p->bytes()[0], 0);
}

TEST(Packet, ResetMetaClearsAllFields) {
  auto p = Packet::make(8);
  p->meta() = PacketMeta{1, 2, 3, 4, 5, 6};
  p->resetMeta();
  EXPECT_EQ(p->meta().inputPort, 0u);
  EXPECT_EQ(p->meta().outputPort, 0u);
  EXPECT_EQ(p->meta().queueId, 0u);
  EXPECT_EQ(p->meta().matchedEntryId, 0u);
  EXPECT_EQ(p->meta().matchedTable, 0u);
  EXPECT_EQ(p->meta().altRouteCount, 0u);
}

TEST(Packet, HexdumpShapesLines) {
  auto p = Packet::make(20, 0x11);
  const auto dump = p->hexdump(20);
  EXPECT_NE(dump.find("0000  "), std::string::npos);
  EXPECT_NE(dump.find("0010  "), std::string::npos);
  EXPECT_NE(dump.find("11 "), std::string::npos);
}

TEST(Packet, HexdumpTruncates) {
  auto p = Packet::make(300);
  const auto dump = p->hexdump(32);
  EXPECT_NE(dump.find("..."), std::string::npos);
}

TEST(Packet, SpanViewsSameStorage) {
  auto p = Packet::make(8);
  p->span()[0] = 0x42;
  EXPECT_EQ(p->bytes()[0], 0x42);
}

// --------------------------------------------------------- freelist pool

TEST(PacketPool, ReusedPacketIsIndistinguishableFromNew) {
  auto p = Packet::make(64, 0xee);
  p->meta().inputPort = 9;
  p->meta().matchedEntryId = 0xdead;
  p->flowId = 1234;
  p->createdAt = sim::Time::ms(7);
  const auto oldId = p->id();
  p.reset();  // returns to the pool

  const auto before = Packet::poolStats();
  auto q = Packet::make(8, 0x55);
  const auto after = Packet::poolStats();
  EXPECT_EQ(after.reused, before.reused + 1);  // served from the pool

  // Fresh identity and bookkeeping, fully overwritten bytes.
  EXPECT_NE(q->id(), oldId);
  EXPECT_EQ(q->meta().inputPort, 0u);
  EXPECT_EQ(q->meta().matchedEntryId, 0u);
  EXPECT_EQ(q->flowId, 0u);
  EXPECT_EQ(q->createdAt, sim::Time::zero());
  ASSERT_EQ(q->size(), 8u);
  for (const auto b : q->bytes()) EXPECT_EQ(b, 0x55);
}

TEST(PacketPool, RecycledIdsStayUnique) {
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    auto p = Packet::make(16);
    EXPECT_NE(p->id(), last);
    last = p->id();
  }
}

TEST(PacketPool, CloneSharesNoBytesWithRecycledSource) {
  auto p = Packet::make(32, 0x10);
  auto c = p->clone();
  const auto* cloneData = c->bytes().data();
  p.reset();  // source goes back to the pool...
  auto q = Packet::make(32, 0x99);  // ...and comes out again here
  for (const auto b : c->bytes()) EXPECT_EQ(b, 0x10);  // clone untouched
  q->bytes()[0] = 0x77;
  EXPECT_EQ(c->bytes()[0], 0x10);
  EXPECT_NE(q->bytes().data(), cloneData);
}

TEST(PacketPool, CloneOfRecycledPacketResetsNothingItShould) {
  // clone() must copy meta/bookkeeping from its source even when both the
  // clone and the source went through the pool.
  auto a = Packet::make(16, 0x01);
  a.reset();
  auto b = Packet::make(24, 0x02);
  b->meta().outputPort = 5;
  b->flowId = 42;
  b->createdAt = sim::Time::us(3);
  auto c = b->clone();
  EXPECT_EQ(c->bytes(), b->bytes());
  EXPECT_EQ(c->meta().outputPort, 5u);
  EXPECT_EQ(c->flowId, 42u);
  EXPECT_EQ(c->createdAt, sim::Time::us(3));
  EXPECT_NE(c->id(), b->id());
}

TEST(PacketPool, DrainPoolEmptiesFreelist) {
  Packet::make(16).reset();
  Packet::drainPool();
  const auto before = Packet::poolStats();
  auto p = Packet::make(16);
  const auto after = Packet::poolStats();
  EXPECT_EQ(after.allocated, before.allocated + 1);  // pool was empty
  EXPECT_EQ(after.reused, before.reused);
}

}  // namespace
}  // namespace tpp::net
