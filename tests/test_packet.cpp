#include "src/net/packet.hpp"

#include <gtest/gtest.h>

namespace tpp::net {
namespace {

TEST(Packet, MakeWithFill) {
  auto p = Packet::make(64, 0xab);
  EXPECT_EQ(p->size(), 64u);
  EXPECT_EQ(p->bytes()[63], 0xab);
}

TEST(Packet, IdsAreUnique) {
  auto a = Packet::make(10);
  auto b = Packet::make(10);
  EXPECT_NE(a->id(), b->id());
}

TEST(Packet, CloneCopiesBytesAndMeta) {
  auto p = Packet::make(16, 0x5a);
  p->meta().inputPort = 3;
  p->meta().matchedEntryId = 0x00010002;
  p->flowId = 99;
  p->createdAt = sim::Time::ms(5);
  auto c = p->clone();
  EXPECT_EQ(c->bytes(), p->bytes());
  EXPECT_EQ(c->meta().inputPort, 3u);
  EXPECT_EQ(c->meta().matchedEntryId, 0x00010002u);
  EXPECT_EQ(c->flowId, 99u);
  EXPECT_EQ(c->createdAt, sim::Time::ms(5));
  EXPECT_NE(c->id(), p->id());  // a clone is a new packet
}

TEST(Packet, CloneIsDeep) {
  auto p = Packet::make(8, 0);
  auto c = p->clone();
  c->bytes()[0] = 0xff;
  EXPECT_EQ(p->bytes()[0], 0);
}

TEST(Packet, ResetMetaClearsAllFields) {
  auto p = Packet::make(8);
  p->meta() = PacketMeta{1, 2, 3, 4, 5, 6};
  p->resetMeta();
  EXPECT_EQ(p->meta().inputPort, 0u);
  EXPECT_EQ(p->meta().outputPort, 0u);
  EXPECT_EQ(p->meta().queueId, 0u);
  EXPECT_EQ(p->meta().matchedEntryId, 0u);
  EXPECT_EQ(p->meta().matchedTable, 0u);
  EXPECT_EQ(p->meta().altRouteCount, 0u);
}

TEST(Packet, HexdumpShapesLines) {
  auto p = Packet::make(20, 0x11);
  const auto dump = p->hexdump(20);
  EXPECT_NE(dump.find("0000  "), std::string::npos);
  EXPECT_NE(dump.find("0010  "), std::string::npos);
  EXPECT_NE(dump.find("11 "), std::string::npos);
}

TEST(Packet, HexdumpTruncates) {
  auto p = Packet::make(300);
  const auto dump = p->hexdump(32);
  EXPECT_NE(dump.find("..."), std::string::npos);
}

TEST(Packet, SpanViewsSameStorage) {
  auto p = Packet::make(8);
  p->span()[0] = 0x42;
  EXPECT_EQ(p->bytes()[0], 0x42);
}

}  // namespace
}  // namespace tpp::net
