// The shard-boundary queue (src/sim/spsc.hpp): FIFO ordering, segment
// boundary and wraparound behavior, destructor bookkeeping, and a
// two-thread hammer. The hammer runs under the asan/ubsan CI legs like the
// rest of tpp_tests, and under the tsan leg, which is where a broken
// publish/acquire pair would actually show up.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/spsc.hpp"

namespace tpp::sim {
namespace {

TEST(SpscQueue, StartsEmpty) {
  SpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peek(), nullptr);
}

TEST(SpscQueue, FifoOrderSingleThread) {
  SpscQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  for (int i = 0; i < 100; ++i) {
    int* front = q.peek();
    ASSERT_NE(front, nullptr);
    EXPECT_EQ(*front, i);
    q.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, PeekIsStableUntilPop) {
  SpscQueue<std::string> q;
  q.push("front");
  q.push("back");
  std::string* p = q.peek();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, "front");
  EXPECT_EQ(q.peek(), p);  // repeated peeks return the same element
  q.pop();
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(*q.peek(), "back");
}

// A tiny segment size forces the boundary path (fresh-segment publication
// and drained-segment retirement) every four elements.
TEST(SpscQueue, CrossesSegmentBoundaries) {
  SpscQueue<int, 4> q;
  for (int i = 0; i < 23; ++i) q.push(i);
  for (int i = 0; i < 23; ++i) {
    int* front = q.peek();
    ASSERT_NE(front, nullptr) << "at element " << i;
    EXPECT_EQ(*front, i);
    q.pop();
  }
  EXPECT_TRUE(q.empty());
}

// Drain-then-refill across the boundary: emptying a queue mid-segment and
// at exact segment edges must not strand or duplicate elements.
TEST(SpscQueue, InterleavedPushPopAtBoundary) {
  SpscQueue<int, 4> q;
  int produced = 0;
  int consumed = 0;
  // Push/pop in a pattern that repeatedly leaves the queue empty right at
  // slot 0, mid-segment, and at the last slot of a segment.
  for (int round = 1; round <= 9; ++round) {
    for (int i = 0; i < round; ++i) q.push(produced++);
    for (int i = 0; i < round; ++i) {
      int* front = q.peek();
      ASSERT_NE(front, nullptr);
      EXPECT_EQ(*front, consumed++);
      q.pop();
    }
    EXPECT_TRUE(q.empty());
  }
  EXPECT_EQ(produced, consumed);
}

// Destructor must run pending elements' destructors exactly once, across
// several segments.
TEST(SpscQueue, DestructorReleasesPendingElements) {
  struct Counted {
    std::shared_ptr<int> alive;
  };
  auto alive = std::make_shared<int>(0);
  {
    SpscQueue<Counted, 4> q;
    for (int i = 0; i < 10; ++i) q.push(Counted{alive});
    q.peek();
    q.pop();  // one consumed; nine pending across three segments
    EXPECT_EQ(alive.use_count(), 10);
  }
  EXPECT_EQ(alive.use_count(), 1);
}

// Move-only payloads (the real cargo is EventFn closures).
TEST(SpscQueue, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>, 2> q;
  for (int i = 0; i < 5; ++i) q.push(std::make_unique<int>(i));
  for (int i = 0; i < 5; ++i) {
    auto* front = q.peek();
    ASSERT_NE(front, nullptr);
    EXPECT_EQ(**front, i);
    q.pop();
  }
}

// Two-thread hammer: one producer streaming a counter, one consumer
// checking strict FIFO. >= 1M messages through a deliberately small
// segment so the cross-segment publish/acquire path is exercised hundreds
// of thousands of times. Sanitizers (asan/ubsan/tsan legs) watch the rest.
TEST(SpscQueue, TwoThreadHammerPreservesFifo) {
  constexpr std::uint64_t kMessages = 1'200'000;
  SpscQueue<std::uint64_t, 8> q;
  std::atomic<bool> failed{false};

  std::thread producer([&q] {
    for (std::uint64_t i = 0; i < kMessages; ++i) q.push(i);
  });
  std::thread consumer([&q, &failed] {
    std::uint64_t expected = 0;
    while (expected < kMessages) {
      std::uint64_t* front = q.peek();
      if (front == nullptr) continue;  // empty is transient, not an error
      if (*front != expected) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      ++expected;
      q.pop();
    }
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(failed.load()) << "consumer saw out-of-order or lost data";
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace tpp::sim
