#include "src/sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tpp::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniformInt(0, 1'000'000) == b.uniformInt(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(7);
  Rng f1 = parent.fork("linkA");
  Rng f2 = Rng(7).fork("linkA");
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(f1.uniform(0, 1), f2.uniform(0, 1));
  }
}

TEST(Rng, ForksWithDifferentNamesAreIndependent) {
  Rng parent(7);
  Rng f1 = parent.fork("a");
  Rng f2 = parent.fork("b");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.uniformInt(0, 1'000'000) == f2.uniformInt(0, 1'000'000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(9), b(9);
  (void)a.fork("x");
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(3);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo = sawLo || v == 0;
    sawHi = sawHi || v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, ExponentialMeanApproximates) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, ParetoBoundedStaysInRange) {
  Rng r(13);
  for (int i = 0; i < 2000; ++i) {
    const double v = r.paretoBounded(1.2, 10.0, 1000.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LE(v, 1000.0);
  }
}

TEST(Rng, ParetoIsHeavyTailedTowardMin) {
  Rng r(17);
  int nearMin = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (r.paretoBounded(1.2, 10.0, 1e6) < 100.0) ++nearMin;
  }
  // Most mass lies near the minimum for shape > 1.
  EXPECT_GT(nearMin, n / 2);
}

TEST(Rng, BernoulliRespectsP) {
  Rng r(19);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) heads += r.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

// Property sweep: fork determinism holds for arbitrary names and seeds.
class RngForkProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, const char*>> {
};

TEST_P(RngForkProperty, ReproducibleAcrossInstances) {
  const auto [seed, name] = GetParam();
  Rng a = Rng(seed).fork(name);
  Rng b = Rng(seed).fork(name);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1'000'000'000), b.uniformInt(0, 1'000'000'000));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndNames, RngForkProperty,
    ::testing::Combine(::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL),
                       ::testing::Values("", "flow", "switch/0",
                                         "a-very-long-substream-name")));

}  // namespace
}  // namespace tpp::sim
