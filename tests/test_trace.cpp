// Flight recorder: ring semantics, serialization round-trip, register
// exposure, testbed wiring, and probe-lifecycle reconstruction — including
// the acceptance case "diagnose a chaos loss from the recorder alone".
#include <gtest/gtest.h>

#include <vector>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/prober.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"
#include "src/sim/fault.hpp"
#include "src/sim/trace.hpp"

namespace tpp {
namespace {

using host::Testbed;
using sim::TraceKind;
using sim::Tracer;

// Under -DTPP_TRACE=OFF the recorder is an empty inline and content
// assertions are meaningless — skip them instead of failing the build's
// test suite. (The null-check wiring itself is still exercised by the
// unguarded tests below.)
#define REQUIRE_TRACE_COMPILED_IN()                        \
  do {                                                     \
    if (!sim::kTraceCompiledIn) {                          \
      GTEST_SKIP() << "built with TPP_TRACE=OFF";          \
    }                                                      \
  } while (0)

// ------------------------------------------------------------------ ring

TEST(Tracer, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Tracer(1).capacity(), 2u);
  EXPECT_EQ(Tracer(8).capacity(), 8u);
  EXPECT_EQ(Tracer(9).capacity(), 16u);
  EXPECT_EQ(Tracer(1000).capacity(), 1024u);
}

TEST(Tracer, RingOverwritesOldestAndCountsLosses) {
  REQUIRE_TRACE_COMPILED_IN();
  Tracer t(8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    t.record(sim::Time::ns(i), TraceKind::EventFire, 0, 0, i);
  }
  EXPECT_EQ(t.written(), 20u);
  EXPECT_EQ(t.size(), 8u);
  EXPECT_EQ(t.overwritten(), 12u);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(snap[i].a, 12u + i) << "oldest-first order";
    EXPECT_EQ(snap[i].tsNanos, 12 + static_cast<std::int64_t>(i));
  }
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.overwritten(), 0u);
}

TEST(Tracer, ActorInterningIsStable) {
  Tracer t;
  const auto a = t.actor("sw0");
  const auto b = t.actor("sw1");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(t.actor("sw0"), a) << "re-interning returns the same id";
  EXPECT_EQ(t.actors(), (std::vector<std::string>{"sw0", "sw1"}));
}

TEST(Tracer, SerializeDecodeRoundTrips) {
  REQUIRE_TRACE_COMPILED_IN();
  Tracer t(16);
  const auto sw = t.actor("sw0");
  const auto h = t.actor("host0");
  t.record(sim::Time::us(1), TraceKind::ProbeSend, h, 3, 17, 4, 2);
  t.record(sim::Time::us(2), TraceKind::TcpuExecute, sw, 3, 1, 4, 0, 12);
  t.record(sim::Time::us(3), TraceKind::ProbeEcho, h, 3, 17, 1, 0);

  const auto decodedBack = sim::decodeTrace(t.serialize());
  ASSERT_TRUE(decodedBack.ok) << decodedBack.error;
  EXPECT_EQ(decodedBack.records, t.snapshot());
  EXPECT_EQ(decodedBack.actors, t.actors());
  EXPECT_EQ(decodedBack.overwritten, 0u);
  EXPECT_FALSE(decodedBack.truncated);
  EXPECT_EQ(decodedBack.actorName(sw), "sw0");
  EXPECT_EQ(decodedBack.actorName(99), "?");
}

// ------------------------------------------------------ simulator wiring

TEST(Trace, ScheduleAndFireShareEventSeq) {
  REQUIRE_TRACE_COMPILED_IN();
  sim::Simulator s;
  Tracer t;
  s.setTracer(&t);
  s.schedule(sim::Time::us(5), [] {});
  s.schedule(sim::Time::us(1), [] {});
  s.run();
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);  // 2 schedules + 2 fires
  EXPECT_EQ(snap[0].kindOf(), TraceKind::EventSchedule);
  EXPECT_EQ(snap[1].kindOf(), TraceKind::EventSchedule);
  EXPECT_EQ(snap[2].kindOf(), TraceKind::EventFire);
  EXPECT_EQ(snap[3].kindOf(), TraceKind::EventFire);
  // The later-scheduled, earlier-firing event (seq 1) fires first; seqs key
  // fires back to their schedule records.
  EXPECT_EQ(snap[2].a, snap[1].a);
  EXPECT_EQ(snap[3].a, snap[0].a);
  // EventSchedule's b/c encode the fire-at instant.
  const std::uint64_t fireAt =
      (static_cast<std::uint64_t>(snap[0].c) << 32) | snap[0].b;
  EXPECT_EQ(fireAt, 5000u);
}

// --------------------------------------------------------- register reads

core::Program telemetryReadProgram() {
  core::ProgramBuilder b;
  b.push(core::addr::SimEventsFired);
  b.push(core::addr::TcpuInstrsRetired);
  b.push(core::addr::TppsExecuted);
  b.push(core::addr::TraceRecords);
  b.push(core::addr::TraceDrops);
  b.push(core::addr::ProbesInFlight);
  b.reserve(6);  // exactly one hop record — register tests run on chain-1
  b.task(7);
  return *b.build();
}

// Small per-hop probe with room for 8 hops; used on longer chains.
core::Program probeProgram() {
  core::ProgramBuilder b;
  b.push(core::addr::SwitchId);
  b.reserve(8);
  b.task(7);
  return *b.build();
}

TEST(Trace, TelemetryRegistersReadableByTpps) {
  REQUIRE_TRACE_COMPILED_IN();
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{});
  Tracer tracer;
  host::armTracing(tb, tracer);

  host::ReliableProber prober(
      tb.host(0), {tb.host(1).mac(), tb.host(1).ip()});
  host::bindProbeGauge(prober, tb, tb.host(0));

  const auto program = telemetryReadProgram();
  std::vector<std::uint32_t> values;
  prober.send(program, [&](const core::ExecutedTpp& tpp) {
    const auto split = host::splitStackRecordsChecked(
        tpp, 6, host::ReliableProber::seqWordIndex(program) + 1);
    ASSERT_EQ(split.records.size(), 1u);
    values = split.records[0];
  });
  tb.sim().run();

  ASSERT_EQ(values.size(), 6u);
  EXPECT_GT(values[0], 0u) << "SimEventsFired";
  EXPECT_GT(values[1], 0u) << "InstrsRetired (this probe's own pushes)";
  EXPECT_EQ(values[2], 0u) << "TppsExecuted counts completed TPPs; this "
                              "probe is still mid-execution";
  EXPECT_GT(values[3], 0u) << "TraceRecords (ring is armed and written)";
  EXPECT_EQ(values[4], 0u) << "TraceDrops (default ring far from full)";
  EXPECT_EQ(values[5], 1u) << "ProbesInFlight (this probe, via the gauge)";
}

TEST(Trace, TelemetryRegistersReadZeroWhenDisarmed) {
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{});
  host::ReliableProber prober(
      tb.host(0), {tb.host(1).mac(), tb.host(1).ip()});
  const auto program = telemetryReadProgram();
  std::vector<std::uint32_t> values;
  prober.send(program, [&](const core::ExecutedTpp& tpp) {
    const auto split = host::splitStackRecordsChecked(
        tpp, 6, host::ReliableProber::seqWordIndex(program) + 1);
    ASSERT_EQ(split.records.size(), 1u);
    values = split.records[0];
  });
  tb.sim().run();
  ASSERT_EQ(values.size(), 6u);
  EXPECT_EQ(values[3], 0u) << "TraceRecords without a tracer";
  EXPECT_EQ(values[4], 0u) << "TraceDrops without a tracer";
  EXPECT_EQ(values[5], 0u) << "ProbesInFlight without the gauge bound";
}

TEST(Trace, ProbeGaugeReturnsToZero) {
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{});
  host::ReliableProber prober(
      tb.host(0), {tb.host(1).mac(), tb.host(1).ip()});
  host::bindProbeGauge(prober, tb, tb.host(0));
  const auto att = tb.attachmentOf(tb.host(0));
  prober.send(telemetryReadProgram(), {});
  EXPECT_EQ(att.sw->portProbesInFlight(att.port), 1u);
  tb.sim().run();
  EXPECT_EQ(att.sw->portProbesInFlight(att.port), 0u);
}

// ----------------------------------------------- lifecycle reconstruction

TEST(Trace, ReconstructsHealthyProbeLifecycle) {
  REQUIRE_TRACE_COMPILED_IN();
  Testbed tb;
  buildChain(tb, 3, host::LinkParams{});
  Tracer tracer;
  host::armTracing(tb, tracer);

  host::ReliableProber prober(
      tb.host(0), {tb.host(1).mac(), tb.host(1).ip()});
  bool echoed = false;
  const auto seq = prober.send(probeProgram(),
                               [&](const core::ExecutedTpp&) { echoed = true; });
  tb.sim().run();
  ASSERT_TRUE(echoed);

  const auto trace = host::decoded(tracer);
  ASSERT_TRUE(trace.ok) << trace.error;
  const auto lc = host::reconstructProbeLifecycle(trace, 7, seq);
  ASSERT_TRUE(lc.found);
  EXPECT_EQ(lc.outcome, host::ProbeLifecycle::Outcome::Echoed);
  EXPECT_FALSE(lc.ambiguous);
  EXPECT_EQ(lc.retransmits, 0u);
  ASSERT_EQ(lc.hops.size(), 3u) << "one TCPU execution per chain switch";
  for (std::size_t i = 0; i < 3; ++i) {
    // The TCPU bumps the hop counter as part of execution, so the record
    // carries the post-increment value: 1, 2, 3 along the chain.
    EXPECT_EQ(lc.hops[i].hopNumber, i + 1);
    EXPECT_EQ(trace.actorName(lc.hops[i].actor),
              "sw" + std::to_string(i));
    EXPECT_EQ(lc.hops[i].faultCode, 0u);
  }
  ASSERT_TRUE(lc.endTsNanos.has_value());
  EXPECT_GT(*lc.endTsNanos, lc.sendTsNanos);

  const auto text = host::describeLifecycle(lc, trace.actors);
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("echo"), std::string::npos);
}

// The acceptance criterion: a chaos-style loss is diagnosable from the
// flight recorder alone — the reconstructed lifecycle shows the probe
// executing on switches before the dead link and nowhere after it.
TEST(Trace, DiagnosesWhereAProbeDiedFromRecorderAlone) {
  REQUIRE_TRACE_COMPILED_IN();
  Testbed tb;
  buildChain(tb, 3, host::LinkParams{});
  Tracer tracer;
  host::armTracing(tb, tracer);

  // Kill the sw0→sw1 link (testbed link 1 is sw0—sw1; aToB carries the
  // forward direction) for the whole run: every copy of the probe dies
  // there, after executing on sw0 only.
  sim::FaultInjector inj(tb.sim(), /*seed=*/42);
  auto& dead = inj.link("sw0->sw1");
  inj.linkDownWindow(dead, sim::Time::zero(), sim::Time::sec(10));
  tb.linkAt(1).aToB().setFaultState(&dead);

  host::ReliableProber::Config cfg{tb.host(1).mac(), tb.host(1).ip()};
  cfg.timeout = sim::Time::ms(1);
  cfg.maxRetries = 1;
  host::ReliableProber prober(tb.host(0), cfg);
  bool lost = false;
  const auto seq = prober.send(probeProgram(), {},
                               [&](std::uint32_t) { lost = true; });
  tb.sim().run(sim::Time::sec(1));
  ASSERT_TRUE(lost);

  const auto trace = host::decoded(tracer);
  ASSERT_TRUE(trace.ok) << trace.error;
  const auto lc = host::reconstructProbeLifecycle(trace, 7, seq);
  ASSERT_TRUE(lc.found);
  EXPECT_EQ(lc.outcome, host::ProbeLifecycle::Outcome::Lost);
  EXPECT_EQ(lc.retransmits, 1u);
  ASSERT_FALSE(lc.hops.empty());
  for (const auto& hop : lc.hops) {
    EXPECT_EQ(trace.actorName(hop.actor), "sw0")
        << "probe must never appear past the dead link";
  }
  // The recorder also caught the wire-level verdicts.
  std::size_t faultDrops = 0;
  for (const auto& r : trace.records) {
    if (r.kindOf() == TraceKind::LinkFaultDrop) ++faultDrops;
  }
  EXPECT_EQ(faultDrops, 2u) << "original + one retransmit";

  const auto text = host::describeLifecycle(lc, trace.actors);
  EXPECT_NE(text.find("LOST"), std::string::npos);
}

TEST(Trace, OverlappingSameTaskProbesFlagAmbiguity) {
  REQUIRE_TRACE_COMPILED_IN();
  Testbed tb;
  buildChain(tb, 2, host::LinkParams{});
  Tracer tracer;
  host::armTracing(tb, tracer);
  host::ReliableProber prober(
      tb.host(0), {tb.host(1).mac(), tb.host(1).ip()});
  const auto s1 = prober.send(probeProgram(), {});
  const auto s2 = prober.send(probeProgram(), {});
  tb.sim().run();
  const auto trace = host::decoded(tracer);
  const auto lc1 = host::reconstructProbeLifecycle(trace, 7, s1);
  const auto lc2 = host::reconstructProbeLifecycle(trace, 7, s2);
  ASSERT_TRUE(lc1.found);
  ASSERT_TRUE(lc2.found);
  EXPECT_TRUE(lc1.ambiguous);
  EXPECT_TRUE(lc2.ambiguous);
}

// ---------------------------------------------------------- exporters

TEST(Trace, ExportersEmitEveryRecord) {
  REQUIRE_TRACE_COMPILED_IN();
  Tracer t(16);
  const auto sw = t.actor("sw0");
  t.record(sim::Time::us(1), TraceKind::ProbeSend, sw, 3, 17);
  t.record(sim::Time::us(2), TraceKind::ProbeEcho, sw, 3, 17, 2, 0);
  const auto trace = host::decoded(t);

  const auto csv = host::toCsv(trace);
  EXPECT_NE(csv.find("ts_nanos,actor,kind"), std::string::npos);
  EXPECT_NE(csv.find("1000,sw0,probe_send,3,17"), std::string::npos);
  EXPECT_NE(csv.find("2000,sw0,probe_echo,3,17,2"), std::string::npos);

  const auto json = host::toChromeJson(trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"probe_send\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sw0\""), std::string::npos);

  for (const auto& r : trace.records) {
    EXPECT_FALSE(host::describeRecord(r, trace.actors).empty());
  }
}

// A disarmed testbed writes nothing (the null-check path really is off).
TEST(Trace, DisarmedTestbedWritesNothing) {
  Testbed tb;
  buildChain(tb, 2, host::LinkParams{});
  host::ReliableProber prober(
      tb.host(0), {tb.host(1).mac(), tb.host(1).ip()});
  prober.send(probeProgram(), {});
  tb.sim().run();
  // No tracer anywhere: nothing to assert on the ring itself, but the run
  // must complete and the probe echo (exercised all trace sites disarmed).
  EXPECT_EQ(prober.outstanding(), 0u);
  EXPECT_EQ(prober.losses(), 0u);
}

}  // namespace
}  // namespace tpp
