#include "src/core/edge_filter.hpp"

#include <gtest/gtest.h>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/net/byte_io.hpp"
#include "src/net/ethernet.hpp"

namespace tpp::core {
namespace {

net::PacketPtr plainFrame() {
  auto p = net::Packet::make(80);
  net::EthernetHeader eth{net::MacAddress::fromIndex(1),
                          net::MacAddress::fromIndex(2),
                          net::kEtherTypeIpv4};
  eth.write(p->span());
  return p;
}

net::PacketPtr tppFrame(bool withWrite) {
  ProgramBuilder b;
  b.push(addr::QueueBytes);
  if (withWrite) b.storeImm(addr::RcpRateRegister, 1);
  b.reserve(4);
  return buildTppFrame(net::MacAddress::fromIndex(1),
                       net::MacAddress::fromIndex(2), *b.build());
}

using Action = EdgeFilter::Action;

TEST(EdgeFilter, DefaultPolicyIsAllow) {
  EdgeFilter f;
  EXPECT_EQ(f.portPolicy(0), EdgePolicy::Allow);
  EXPECT_EQ(f.portPolicy(99), EdgePolicy::Allow);
  auto p = tppFrame(true);
  EXPECT_EQ(f.apply(*p, 0), Action::Forwarded);
}

TEST(EdgeFilter, NonTppPacketsAlwaysForward) {
  EdgeFilter f;
  f.setPortPolicy(0, EdgePolicy::Drop);
  auto p = plainFrame();
  EXPECT_EQ(f.apply(*p, 0), Action::Forwarded);
}

TEST(EdgeFilter, DropPolicyDropsTpps) {
  EdgeFilter f;
  f.setPortPolicy(0, EdgePolicy::Drop);
  auto p = tppFrame(false);
  EXPECT_EQ(f.apply(*p, 0), Action::Dropped);
  EXPECT_EQ(f.dropped(), 1u);
}

TEST(EdgeFilter, StripPolicyRemovesShimAndForwardsInner) {
  EdgeFilter f;
  f.setPortPolicy(0, EdgePolicy::Strip);
  auto p = tppFrame(false);
  const std::size_t before = p->size();
  EXPECT_EQ(f.apply(*p, 0), Action::Stripped);
  EXPECT_LT(p->size(), before);
  const auto eth = net::EthernetHeader::parse(p->span());
  EXPECT_NE(eth->etherType, net::kEtherTypeTpp);
  EXPECT_EQ(f.stripped(), 1u);
}

TEST(EdgeFilter, ReadOnlyPolicyAllowsReadPrograms) {
  EdgeFilter f;
  f.setPortPolicy(0, EdgePolicy::ReadOnly);
  auto p = tppFrame(false);
  EXPECT_EQ(f.apply(*p, 0), Action::Forwarded);
}

TEST(EdgeFilter, ReadOnlyPolicyStripsWritePrograms) {
  EdgeFilter f;
  f.setPortPolicy(0, EdgePolicy::ReadOnly);
  auto p = tppFrame(true);
  EXPECT_EQ(f.apply(*p, 0), Action::Stripped);
}

TEST(EdgeFilter, PoliciesArePerPort) {
  EdgeFilter f;
  f.setPortPolicy(1, EdgePolicy::Drop);
  auto p1 = tppFrame(false);
  auto p2 = tppFrame(false);
  EXPECT_EQ(f.apply(*p1, 0), Action::Forwarded);  // port 0 trusted
  EXPECT_EQ(f.apply(*p2, 1), Action::Dropped);
}

TEST(EdgeFilter, MalformedTppDroppedOnUntrustedPort) {
  EdgeFilter f;
  f.setPortPolicy(0, EdgePolicy::Strip);
  // Ethertype says TPP but the header lengths overrun the buffer.
  auto p = net::Packet::make(net::kEthernetHeaderSize + 4);
  net::putBe16(p->span(), 12, net::kEtherTypeTpp);
  EXPECT_EQ(f.apply(*p, 0), Action::Dropped);
}

TEST(EdgeFilter, UndecodableInstructionDropped) {
  EdgeFilter f;
  f.setPortPolicy(0, EdgePolicy::ReadOnly);
  auto p = tppFrame(false);
  // Corrupt the opcode byte of instruction 0.
  p->bytes()[net::kEthernetHeaderSize + kTppHeaderSize] = 0xee;
  EXPECT_EQ(f.apply(*p, 0), Action::Dropped);
}

TEST(EdgeFilter, PopCountsAsWrite) {
  EdgeFilter f;
  f.setPortPolicy(0, EdgePolicy::ReadOnly);
  ProgramBuilder b;
  b.push(addr::QueueBytes);
  b.pop(kSramBase);
  b.reserve(2);
  auto p = buildTppFrame(net::MacAddress::fromIndex(1),
                         net::MacAddress::fromIndex(2), *b.build());
  EXPECT_EQ(f.apply(*p, 0), Action::Stripped);
}

}  // namespace
}  // namespace tpp::core
