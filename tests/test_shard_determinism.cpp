// Sharded-run determinism wall (`ctest -L determinism`): for a fixed
// (seed, shard assignment), N-shard runs must be byte-identical run to
// run, and a 1-shard sharded run must be byte-identical to the legacy
// single-threaded Simulator path. Three scenarios (microburst, rcpstar,
// incast, tcp) x shard counts {1, 2, 4} x five seeds.
//
// Shard discipline inside the scenarios: every traffic generator and app
// is attached to hosts of a single shard (multi-host generators schedule
// through their first sender's simulator, so splitting one across shards
// would cross-schedule). Cross-shard traffic still flows — through the
// links the shard plans cut.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/apps/deployment.hpp"
#include "src/apps/tpp_tcp.hpp"
#include "src/apps/microburst.hpp"
#include "src/apps/rcpstar.hpp"
#include "src/core/interference.hpp"
#include "src/host/flow.hpp"
#include "src/host/tcp.hpp"
#include "src/host/telemetry.hpp"
#include "src/host/topology.hpp"
#include "src/sim/random.hpp"
#include "src/sim/trace.hpp"
#include "src/workload/generators.hpp"
#include "src/workload/scenario.hpp"

namespace tpp::test {
namespace {

constexpr std::size_t kRing = 1u << 12;
constexpr std::uint64_t kSeeds[] = {11, 23, 37, 41, 59};

enum class Scenario { Microburst, RcpStar, Incast, Tcp };

const char* scenarioName(Scenario s) {
  switch (s) {
    case Scenario::Microburst: return "microburst";
    case Scenario::RcpStar: return "rcpstar";
    case Scenario::Incast: return "incast";
    case Scenario::Tcp: return "tcp";
  }
  return "?";
}

// Star (buildStar(tb, 4): hosts 0..3 send, host 4 receives, switch 0 is
// the hub). The hub, the receiver and sender 3 stay on shard 0; the other
// senders spread across the remaining shards.
host::ShardPlan starPlan(std::size_t shards) {
  host::ShardPlan plan;
  plan.shards = shards;
  if (shards == 2) plan.hostShard = {1, 1, 0, 0, 0};
  if (shards == 4) plan.hostShard = {1, 2, 3, 0, 0};
  return plan;
}

// Dumbbell with 2 pairs (switches: left 0 / right 1; hosts: senders 0,1
// then receivers 2,3). Two shards cut the bottleneck; four shards
// additionally peel the hosts off their switches.
host::ShardPlan dumbbellPlan(std::size_t shards) {
  host::ShardPlan plan;
  plan.shards = shards;
  if (shards == 2) {
    plan.switchShard = {0, 1};
    plan.hostShard = {0, 0, 1, 1};
  }
  if (shards == 4) {
    plan.switchShard = {0, 1};
    plan.hostShard = {2, 2, 3, 3};
  }
  return plan;
}

// Drives one scenario through either run path and returns the serialized
// (merged) trace. `legacy` ignores `shards` and uses the plain Simulator
// loop with a single recorder — the pre-sharding code path.
class Runner {
 public:
  Runner(host::ShardPlan plan, bool legacy)
      : legacyMode_(legacy),
        tb_(legacy ? host::Testbed{} : host::Testbed{std::move(plan)}) {}

  host::Testbed& tb() { return tb_; }

  void arm() {
    if (legacyMode_) {
      legacy_ = std::make_unique<sim::Tracer>(kRing);
      host::armTracing(tb_, *legacy_);
    } else {
      sharded_ = std::make_unique<host::ShardedTrace>(
          tb_.sharded().shardCount(), kRing);
      host::armTracing(tb_, *sharded_);
    }
  }
  void run(sim::Time until = sim::Time::max()) {
    if (legacyMode_) {
      tb_.sim().run(until);
    } else {
      tb_.run(until);
    }
  }
  std::vector<std::uint8_t> bytes() const {
    return legacyMode_ ? legacy_->serialize() : sharded_->merged();
  }

 private:
  bool legacyMode_;
  host::Testbed tb_;
  std::unique_ptr<sim::Tracer> legacy_;
  std::unique_ptr<host::ShardedTrace> sharded_;
};

// Seed-jittered periodic incast bursts into the star's receiver, one
// single-sender burst generator per host so each stays shard-local, with
// a TPP monitor watching from sender 3 (shard 0).
std::vector<std::uint8_t> runMicroburst(std::uint64_t seed,
                                        std::size_t shards, bool legacy) {
  Runner r(starPlan(shards), legacy);
  host::Testbed& tb = r.tb();
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 256 * 1024;
  buildStar(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(2)}, cfg);
  r.arm();

  host::Host& receiver = tb.host(4);
  sim::Rng rng(seed);
  std::vector<std::unique_ptr<workload::IncastBurst>> bursts;
  for (std::size_t i = 0; i < 4; ++i) {
    sim::Rng sub = rng.fork("sender" + std::to_string(i));
    workload::IncastBurst::Config icfg;
    icfg.dstMac = receiver.mac();
    icfg.dstIp = receiver.ip();
    icfg.burstBytes = 2'000 + 1'000 * static_cast<std::uint64_t>(
                                          sub.uniformInt(0, 6));
    icfg.period = sim::Time::ms(1);
    icfg.dstPort = static_cast<std::uint16_t>(21000 + 100 * i);
    bursts.push_back(std::make_unique<workload::IncastBurst>(
        std::vector<host::Host*>{&tb.host(i)}, icfg));
    bursts.back()->start(
        sim::Time::us(100 + 50 * static_cast<std::int64_t>(i) +
                      sub.uniformInt(0, 400)));
  }

  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = receiver.mac();
  mcfg.dstIp = receiver.ip();
  mcfg.interval = sim::Time::us(500);
  apps::MicroburstMonitor monitor(tb.host(3), mcfg);
  monitor.start(sim::Time::zero());

  r.run(sim::Time::ms(5));
  monitor.stop();
  for (auto& b : bursts) b->stop();
  r.run();
  return r.bytes();
}

// One RCP*-controlled flow and one fixed-rate competitor crossing the
// dumbbell bottleneck; the seed varies the competitor's rate and the
// controlled flow's payload.
std::vector<std::uint8_t> runRcpStar(std::uint64_t seed, std::size_t shards,
                                     bool legacy) {
  Runner r(dumbbellPlan(shards), legacy);
  host::Testbed& tb = r.tb();
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 64 * 1024;
  buildDumbbell(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{20'000'000, sim::Time::us(200)}, cfg);
  r.arm();
  // The race oracle runs under the determinism wall (and the TSan leg):
  // each switch's oracle records on that switch's shard, and the observed
  // SRAM interleavings must stay inside the static interference verdict.
  host::SramOracleSet oracles(tb.switchCount());
  host::armSramOracle(tb, oracles);

  host::FlowSpec spec;
  spec.dstMac = tb.host(2).mac();
  spec.dstIp = tb.host(2).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.payloadBytes = 800 + 40 * (seed % 5);
  spec.rateBps = 500e3;
  host::PacedFlow flow(tb.host(0), spec, /*flowId=*/1);

  apps::RcpStarController::Config ccfg;
  ccfg.params.alpha = 0.5;
  ccfg.params.beta = 1.0;
  ccfg.params.rttSeconds = 0.005;
  ccfg.period = sim::Time::ms(2);
  ccfg.probesPerPeriod = 2;
  ccfg.dstMac = spec.dstMac;
  ccfg.dstIp = spec.dstIp;
  apps::RcpStarController controller(tb.host(0), flow, ccfg);

  host::FlowSpec cross = spec;
  cross.dstMac = tb.host(3).mac();
  cross.dstIp = tb.host(3).ip();
  cross.srcPort = 22000;
  cross.dstPort = 22000;
  cross.rateBps = 200e3 + 100e3 * static_cast<double>(seed % 7);
  host::PacedFlow competitor(tb.host(1), cross, /*flowId=*/2);

  flow.start(sim::Time::zero());
  competitor.start(sim::Time::zero());
  controller.start(sim::Time::zero());
  r.run(sim::Time::ms(20));
  controller.stop();
  competitor.stop();
  flow.stop();
  r.run();

  const auto dep = apps::shippedDeployment();
  const auto report = core::analyzeInterference(dep.tasks, dep.options);
  for (const auto& line : oracles.divergences(report, dep.tasks)) {
    ADD_FAILURE() << "static/dynamic divergence: " << line;
  }
  return r.bytes();
}

// Stochastic on/off senders (the classic incast driver): each sender's Rng
// substream is forked from the seed by name, so placement never feeds the
// randomness.
std::vector<std::uint8_t> runIncast(std::uint64_t seed, std::size_t shards,
                                    bool legacy) {
  Runner r(starPlan(shards), legacy);
  host::Testbed& tb = r.tb();
  buildStar(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(2)});
  r.arm();

  workload::OnOffSender::Config ocfg;
  ocfg.flow.dstMac = tb.host(4).mac();
  ocfg.flow.dstIp = tb.host(4).ip();
  ocfg.peakRateBps = 800e6;
  ocfg.meanOn = sim::Time::ms(1);
  ocfg.meanOff = sim::Time::ms(1);
  workload::OnOffSender sender(tb.host(0), ocfg, sim::Rng(seed));
  ocfg.flow.srcPort = 20001;
  workload::OnOffSender sender2(tb.host(2), ocfg,
                                sim::Rng(seed).fork("second"));
  sender.start(sim::Time::zero());
  sender2.start(sim::Time::zero());

  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = tb.host(4).mac();
  mcfg.dstIp = tb.host(4).ip();
  mcfg.interval = sim::Time::us(500);
  apps::MicroburstMonitor monitor(tb.host(1), mcfg);
  monitor.start(sim::Time::zero());

  r.run(sim::Time::ms(10));
  sender.stop();
  sender2.stop();
  monitor.stop();
  r.run();
  return r.bytes();
}

// Two TCP bulk transfers crossing the dumbbell bottleneck into a shallow
// buffer — overflow loss exercises retransmit, dup-ACK recovery and cwnd
// cuts (all traced) — with a TPP congestion controller on the first
// connection so probe traffic crosses the shard cut too. Both senders sit
// on one shard in every plan; the listener lives on the receiver's shard.
// The seed varies the burst size.
std::vector<std::uint8_t> runTcp(std::uint64_t seed, std::size_t shards,
                                 bool legacy) {
  Runner r(dumbbellPlan(shards), legacy);
  host::Testbed& tb = r.tb();
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 16 * 1024;
  buildDumbbell(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                host::LinkParams{50'000'000, sim::Time::us(50)}, cfg);
  r.arm();

  host::Host& recv = tb.host(2);
  host::TcpListener listener(recv, 23000);

  workload::TcpIncast::Config icfg;
  icfg.dstMac = recv.mac();
  icfg.dstIp = recv.ip();
  icfg.burstBytes =
      20'000 + 5'000 * static_cast<std::uint64_t>(
                           sim::Rng(seed).fork("burst").uniformInt(0, 6));
  workload::TcpIncast incast({&tb.host(0), &tb.host(1)}, icfg);
  incast.start(sim::Time::us(100));

  apps::TppTcpController::Config tcfg;
  tcfg.queueThresholdBytes = 8 * 1024;
  apps::TppTcpController controller(tb.host(0), incast.connection(0), tcfg);
  controller.start(sim::Time::us(200));

  r.run(sim::Time::ms(100));
  controller.stop();
  r.run();
  EXPECT_EQ(incast.finishedCount(), incast.flowCount());
  return r.bytes();
}

std::vector<std::uint8_t> runScenario(Scenario sc, std::uint64_t seed,
                                      std::size_t shards, bool legacy) {
  switch (sc) {
    case Scenario::Microburst: return runMicroburst(seed, shards, legacy);
    case Scenario::RcpStar: return runRcpStar(seed, shards, legacy);
    case Scenario::Incast: return runIncast(seed, shards, legacy);
    case Scenario::Tcp: return runTcp(seed, shards, legacy);
  }
  return {};
}

using Combo = std::tuple<Scenario, std::size_t, std::uint64_t>;

// Named generators instead of lambdas: commas inside a structured binding
// are not parenthesized, so a lambda body would be split by the
// INSTANTIATE_TEST_SUITE_P macro expansion.
std::string comboName(const ::testing::TestParamInfo<Combo>& info) {
  const auto [sc, shards, seed] = info.param;
  return std::string(scenarioName(sc)) + "_s" + std::to_string(shards) +
         "_seed" + std::to_string(seed);
}

std::string pairName(
    const ::testing::TestParamInfo<std::tuple<Scenario, std::uint64_t>>&
        info) {
  const auto [sc, seed] = info.param;
  return std::string(scenarioName(sc)) + "_seed" + std::to_string(seed);
}

class ShardDeterminism : public ::testing::TestWithParam<Combo> {};

TEST_P(ShardDeterminism, RunToRunMergedTraceIsByteIdentical) {
  const auto [sc, shards, seed] = GetParam();
  const auto a = runScenario(sc, seed, shards, /*legacy=*/false);
  const auto b = runScenario(sc, seed, shards, /*legacy=*/false);
  if (sim::kTraceCompiledIn) {
    const auto decodedA = sim::decodeTrace(a);
    ASSERT_TRUE(decodedA.ok) << decodedA.error;
    ASSERT_FALSE(decodedA.records.empty());
  }
  EXPECT_EQ(a, b) << "N-shard merged trace varies run to run";
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ShardDeterminism,
    ::testing::Combine(::testing::Values(Scenario::Microburst,
                                         Scenario::RcpStar, Scenario::Incast,
                                         Scenario::Tcp),
                       ::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::ValuesIn(kSeeds)),
    comboName);

// A 1-shard sharded run must be bit-invisible next to the legacy path —
// same scenario, same seed, plain Simulator + single Tracer vs
// ShardedSimulator + merged recorders.
class ShardLegacyParity
    : public ::testing::TestWithParam<std::tuple<Scenario, std::uint64_t>> {};

TEST_P(ShardLegacyParity, OneShardMatchesLegacySimulatorPath) {
  const auto [sc, seed] = GetParam();
  const auto legacy = runScenario(sc, seed, /*shards=*/1, /*legacy=*/true);
  const auto sharded = runScenario(sc, seed, /*shards=*/1, /*legacy=*/false);
  EXPECT_EQ(legacy, sharded);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ShardLegacyParity,
    ::testing::Combine(::testing::Values(Scenario::Microburst,
                                         Scenario::RcpStar, Scenario::Incast,
                                         Scenario::Tcp),
                       ::testing::ValuesIn(kSeeds)),
    pairName);

// Five consecutive 4-shard runs in one process: catches slow cross-run
// state leaks (pools, counters) that a single rerun can miss.
TEST(ShardDeterminism, FourShardRunStableAcrossFiveRuns) {
  const auto first =
      runScenario(Scenario::Microburst, 23, /*shards=*/4, /*legacy=*/false);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(first, runScenario(Scenario::Microburst, 23, 4, false))
        << "diverged on repeat " << i;
  }
}

// Sanity that the seed actually reaches the workload: two seeds must not
// collapse to the same trace (otherwise the wall above proves nothing).
// The TCP workload generators draw their whole arrival schedule (times,
// sizes, senders) from their own Rng at start(); shard placement must not
// feed it. A fixed seed therefore yields an identical flow log on 1, 2 or
// 4 shards — checked here against the actual post-run records, so flows
// also have to complete identically.
TEST(WorkloadDeterminism, FlowScheduleIdenticalAcrossShardPlans) {
  auto flowLog = [](std::size_t shards) {
    Runner r(dumbbellPlan(shards), /*legacy=*/false);
    host::Testbed& tb = r.tb();
    buildDumbbell(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{100'000'000, sim::Time::us(50)});
    r.arm();
    host::Host& recv = tb.host(2);
    host::TcpListener listener(recv, 23000);
    workload::TcpPoissonFlowGenerator::Config gcfg;
    gcfg.dstMac = recv.mac();
    gcfg.dstIp = recv.ip();
    gcfg.flowsPerSecond = 400.0;
    gcfg.horizon = sim::Time::ms(50);
    workload::TcpPoissonFlowGenerator gen({&tb.host(0), &tb.host(1)}, gcfg,
                                          sim::Rng(77));
    gen.start(sim::Time::ms(1));
    r.run();
    std::vector<std::tuple<std::int64_t, std::uint64_t, std::size_t,
                           std::int64_t>>
        log;
    for (const auto& rec : gen.records()) {
      EXPECT_TRUE(rec.finished());
      log.emplace_back(rec.arrival.nanos(), rec.bytes, rec.sender,
                       rec.completion.nanos());
    }
    EXPECT_GT(log.size(), 5u);
    return log;
  };
  const auto one = flowLog(1);
  EXPECT_EQ(one, flowLog(2));
  EXPECT_EQ(one, flowLog(4));
}

TEST(ShardDeterminism, DifferentSeedsDiffer) {
  if (!sim::kTraceCompiledIn) GTEST_SKIP() << "built with TPP_TRACE=OFF";
  EXPECT_NE(runScenario(Scenario::Incast, 11, 2, false),
            runScenario(Scenario::Incast, 23, 2, false));
}

// ------------------- data-driven scenario-runner wall (ISSUE 9)
// The declarative runner path — parser, schedule compiler, fat-tree shard
// partition, TCP engine, queue sampler — gets the same guard the
// hand-wired testbeds above have. Config is data, not code.

constexpr char kWallScenario[] = R"(
[scenario]
name = wall_k4
seed = 97
horizon_ms = 2

[topology]
type = fattree
k = 4
link_gbps = 10
link_delay_us = 2
buffer_kb = 128

[workload]
pattern = poisson
size_dist = websearch
size_scale = 0.01
flows_per_sec = 20000
max_flows = 40
participants = 16
mss = 1000

[tpp]
controller = on
max_controllers = 8

[metrics]
queue_sample_us = 100
)";

// At each shard count, a rerun's merged flight-recorder trace must be
// byte-identical (trace bytes cannot match *across* shard counts — the
// merge prefixes actors with their shard — which is why the cross-count
// check below compares the physical observables instead).
TEST(ScenarioRunnerDeterminism, RunToRunMergedTraceByteIdentical) {
  const auto parsed = workload::parseScenario(kWallScenario);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    workload::RunOptions opts;
    opts.shardsOverride = shards;
    opts.captureTrace = true;
    opts.traceRing = kRing;
    const auto a = workload::runScenario(parsed.config, opts);
    const auto b = workload::runScenario(parsed.config, opts);
    ASSERT_GT(a.result.flows, 0u);
    EXPECT_EQ(a.result.finished + a.result.failed, a.result.flows)
        << shards << "-shard run left flows unfinished";
    EXPECT_EQ(a.trace, b.trace)
        << shards << "-shard scenario-runner trace varies run to run";
    EXPECT_EQ(a.result.summaryText(parsed.config),
              b.result.summaryText(parsed.config));
  }
}

// Across shard counts the physical observables — the full summary, the
// per-flow digest (arrivals, sizes, completions) and the queue-sample
// digest — must be byte-identical at a fixed seed.
TEST(ScenarioRunnerDeterminism, SummaryInvariantAcrossShardCounts) {
  const auto parsed = workload::parseScenario(kWallScenario);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  std::string refSummary;
  std::uint64_t refFlowDigest = 0, refQueueDigest = 0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    workload::RunOptions opts;
    opts.shardsOverride = shards;
    const auto run = workload::runScenario(parsed.config, opts);
    const std::string summary = run.result.summaryText(parsed.config);
    if (refSummary.empty()) {
      refSummary = summary;
      refFlowDigest = run.result.flowDigest;
      refQueueDigest = run.result.queueDigest;
      EXPECT_GT(run.result.finished, 0u);
      EXPECT_GT(run.result.queueSamples, 0u);
    } else {
      EXPECT_EQ(summary, refSummary)
          << "summary diverged at shards=" << shards;
      EXPECT_EQ(run.result.flowDigest, refFlowDigest);
      EXPECT_EQ(run.result.queueDigest, refQueueDigest);
    }
  }
}

}  // namespace
}  // namespace tpp::test
