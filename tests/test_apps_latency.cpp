#include "src/apps/latency_profiler.hpp"

#include <gtest/gtest.h>

#include "src/host/flow.hpp"
#include "src/host/topology.hpp"

namespace tpp::apps {
namespace {

using host::Testbed;

TEST(LatencyProbeProgram, ShapeAndAddressing) {
  const auto p = makeLatencyProbeProgram(6, 9);
  EXPECT_EQ(p.mode, core::AddressingMode::Hop);
  EXPECT_EQ(p.perHopWords, 4);
  EXPECT_EQ(p.pmemWords, 24);
  EXPECT_EQ(p.taskId, 9);
  ASSERT_EQ(p.instructions.size(), 4u);
  for (const auto& ins : p.instructions) {
    EXPECT_EQ(ins.op, core::Opcode::Load);
  }
}

struct ProfilerFixture : public ::testing::Test {
  Testbed tb;
  static constexpr std::uint64_t kRate = 100'000'000;  // 100 Mb/s links

  void SetUp() override {
    asic::SwitchConfig cfg;
    cfg.bufferPerQueueBytes = 1 << 20;
    buildChain(tb, 3, host::LinkParams{kRate, sim::Time::us(10)}, cfg);
  }
};

TEST_F(ProfilerFixture, QuietPathShowsPropagationOnly) {
  LatencyProfiler::Config cfg;
  cfg.dstMac = tb.host(1).mac();
  cfg.dstIp = tb.host(1).ip();
  cfg.interval = sim::Time::ms(1);
  LatencyProfiler profiler(tb.host(0), cfg);
  profiler.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(50));
  profiler.stop();
  tb.sim().run();

  ASSERT_EQ(profiler.hopsObserved(), 3u);
  EXPECT_GT(profiler.resultsReceived(), 40u);
  for (std::size_t h = 0; h < 2; ++h) {
    // Segment = serialization of the small probe (~10 us at 100 Mb/s for
    // ~130 B incl. overhead) + 10 us propagation; queueing ~0.
    EXPECT_LT(profiler.hop(h).segmentDelayUs.mean(), 40.0);
    EXPECT_GT(profiler.hop(h).segmentDelayUs.mean(), 9.0);
    EXPECT_LT(profiler.hop(h).queueDelayUs.mean(), 1.0);
  }
}

TEST_F(ProfilerFixture, AttributesQueueingToTheCongestedHop) {
  // Cross traffic enters at sw1 at 150% of the sw1->sw2 link.
  auto& xsrc = tb.addHost();
  tb.link(xsrc, 0, tb.sw(1), 2, 1'000'000'000, sim::Time::us(1));
  tb.installAllRoutes();
  host::FlowSpec xspec;
  xspec.dstMac = tb.host(1).mac();
  xspec.dstIp = tb.host(1).ip();
  xspec.rateBps = 1.5 * kRate;
  host::PacedFlow cross(xsrc, xspec, 42);
  cross.start(sim::Time::zero());

  LatencyProfiler::Config cfg;
  cfg.dstMac = tb.host(1).mac();
  cfg.dstIp = tb.host(1).ip();
  cfg.interval = sim::Time::ms(1);
  LatencyProfiler profiler(tb.host(0), cfg);
  profiler.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(40));
  cross.stop();
  profiler.stop();
  tb.sim().run(tb.sim().now() + sim::Time::sec(1));

  ASSERT_EQ(profiler.hopsObserved(), 3u);
  const double q0 = profiler.hop(0).queueDelayUs.mean();
  const double q1 = profiler.hop(1).queueDelayUs.mean();
  EXPECT_GT(q1, 100.0);       // the congested hop queues deeply
  EXPECT_GT(q1, 20.0 * q0);   // and dominates the breakdown
  // Segment delay between sw1 and sw2 reflects that queueing.
  EXPECT_GT(profiler.hop(1).segmentDelayUs.mean(), q1 * 0.3);
}

TEST_F(ProfilerFixture, SegmentDelayTracksQueueDelayEstimate) {
  // Under moderate congestion the two independent measurements agree:
  // segment(h) ≈ queue(h) + serialization + propagation.
  auto& xsrc = tb.addHost();
  tb.link(xsrc, 0, tb.sw(1), 2, 1'000'000'000, sim::Time::us(1));
  tb.installAllRoutes();
  host::FlowSpec xspec;
  xspec.dstMac = tb.host(1).mac();
  xspec.dstIp = tb.host(1).ip();
  xspec.rateBps = 1.2 * kRate;
  host::PacedFlow cross(xsrc, xspec, 42);
  cross.start(sim::Time::zero());

  LatencyProfiler::Config cfg;
  cfg.dstMac = tb.host(1).mac();
  cfg.dstIp = tb.host(1).ip();
  cfg.interval = sim::Time::ms(2);
  LatencyProfiler profiler(tb.host(0), cfg);
  profiler.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(30));
  cross.stop();
  profiler.stop();
  tb.sim().run(tb.sim().now() + sim::Time::sec(1));

  const auto& hop1 = profiler.hop(1);
  // The probe itself joins the tail of the queue it just measured, so the
  // segment includes the queue estimate plus bounded extras.
  EXPECT_GT(hop1.segmentDelayUs.mean(), hop1.queueDelayUs.mean() * 0.5);
  EXPECT_LT(hop1.segmentDelayUs.mean(), hop1.queueDelayUs.mean() + 200.0);
}

TEST_F(ProfilerFixture, IgnoresForeignResults) {
  LatencyProfiler::Config cfg;
  cfg.dstMac = tb.host(1).mac();
  cfg.dstIp = tb.host(1).ip();
  cfg.taskId = 5;
  LatencyProfiler profiler(tb.host(0), cfg);
  profiler.start(sim::Time::zero());
  // A stack-mode probe from another task on the same host.
  core::ProgramBuilder other;
  other.task(6);
  other.push(core::addr::SwitchId);
  other.reserve(4);
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), *other.build());
  tb.sim().run(sim::Time::ms(5));
  profiler.stop();
  tb.sim().run(tb.sim().now() + sim::Time::sec(1));
  EXPECT_EQ(profiler.resultsReceived(), profiler.probesSent());
}

}  // namespace
}  // namespace tpp::apps
