// Robustness property tests: the dataplane must never crash, corrupt
// memory, or mis-account on adversarial inputs — random programs, random
// bytes, random topologies.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/assembler.hpp"
#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"
#include "src/net/byte_io.hpp"
#include "src/sim/random.hpp"
#include "src/sim/trace.hpp"

namespace tpp {
namespace {

using host::Testbed;

// ----------------------------------------------------- random programs

core::Program randomProgram(sim::Rng& rng) {
  core::ProgramBuilder b;
  const auto instrs = rng.uniformInt(0, 12);
  for (std::int64_t i = 0; i < instrs; ++i) {
    const auto op = static_cast<core::Opcode>(rng.uniformInt(0, 10));
    auto addr = static_cast<std::uint16_t>(rng.uniformInt(0, 0xffff));
    auto off = static_cast<std::uint8_t>(rng.uniformInt(0, 40));
    // Zero the don't-care operand fields (as the builder API does) so
    // assembly text is a complete representation.
    if (op == core::Opcode::Nop) {
      addr = 0;
      off = 0;
    }
    if (op == core::Opcode::Push || op == core::Opcode::Pop) off = 0;
    b.raw({op, addr, off});
  }
  b.task(static_cast<std::uint16_t>(rng.uniformInt(0, 3)));
  if (rng.bernoulli(0.3)) {
    b.mode(core::AddressingMode::Hop);
    b.perHop(static_cast<std::uint8_t>(rng.uniformInt(1, 6)));
  }
  b.reserve(static_cast<std::uint8_t>(rng.uniformInt(0, 32)));
  return *b.build();
}

class RandomProgramFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramFuzz, NetworkSurvivesArbitraryPrograms) {
  Testbed tb;
  buildChain(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(1)});
  sim::Rng rng(GetParam());

  std::size_t echoed = 0;
  tb.host(0).onTppResult([&](const core::ExecutedTpp& t) {
    ++echoed;
    // Structural invariants that must hold for ANY program:
    EXPECT_LE(t.header.stackPointer,
              t.header.pmemWords * core::kWordSize);
    if (t.header.faultCode != core::Fault::None) {
      EXPECT_TRUE(t.header.flags & core::kFlagFaulted);
    }
    EXPECT_EQ(t.header.hopNumber, 3);  // probes always traverse 3 switches
  });

  const int kProbes = 60;
  for (int i = 0; i < kProbes; ++i) {
    tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(),
                         randomProgram(rng));
  }
  tb.sim().run();
  EXPECT_EQ(echoed, static_cast<std::size_t>(kProbes));
  // Statistics stayed read-only: no fuzz program may alter the switch id
  // or the table versions.
  EXPECT_EQ(tb.sw(0).l3().version(), tb.sw(1).l3().version());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ------------------------------------------------------- random bytes

class RandomBytesFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBytesFuzz, ParsersRejectGarbageGracefully) {
  sim::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniformInt(0, 200));
    std::vector<std::uint8_t> bytes(size);
    for (auto& byte : bytes) {
      byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    }
    net::Packet packet(bytes);
    // None of these may crash or read out of bounds; returning nullopt or
    // false is always acceptable.
    (void)core::parseExecuted(packet);
    (void)core::TppView::at(packet, 14);
    (void)core::stripTppShim(packet);
    (void)net::EthernetHeader::parse(packet.span());
    (void)net::Ipv4Header::parse(packet.span());
  }
  SUCCEED();
}

TEST_P(RandomBytesFuzz, SwitchSurvivesGarbageFrames) {
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(1)});
  sim::Rng rng(GetParam() + 1000);
  for (int round = 0; round < 100; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniformInt(14, 300));
    auto packet = net::Packet::make(size);
    for (auto& byte : packet->bytes()) {
      byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    }
    // Mark a third of them as TPPs so the TCPU path gets fuzzed too.
    if (round % 3 == 0) net::putBe16(packet->span(), 12, net::kEtherTypeTpp);
    tb.sw(0).receive(std::move(packet), 0);
  }
  tb.sim().run();
  // Every frame was either forwarded or counted as a drop/miss.
  const auto& st = tb.sw(0).stats();
  EXPECT_EQ(st.totalRxPackets, 100u);
  EXPECT_EQ(st.totalTxPackets + st.totalDrops, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBytesFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u));

// -------------------------------------------------- random topologies

class RandomTreeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeFuzz, RoutingWorksOnRandomTrees) {
  sim::Rng rng(GetParam());
  Testbed tb;
  const auto switches = static_cast<std::size_t>(rng.uniformInt(2, 8));
  asic::SwitchConfig cfg;
  cfg.ports = 16;
  for (std::size_t s = 0; s < switches; ++s) tb.addSwitch(cfg);
  // Random tree over switches: node s>0 links to a random earlier switch.
  std::vector<std::size_t> nextPort(switches, 0);
  for (std::size_t s = 1; s < switches; ++s) {
    const auto parent =
        static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(s) - 1));
    tb.link(tb.sw(s), nextPort[s]++, tb.sw(parent), nextPort[parent]++,
            1'000'000'000, sim::Time::us(1));
  }
  // 2-4 hosts on random switches.
  const auto hosts = static_cast<std::size_t>(rng.uniformInt(2, 4));
  for (std::size_t h = 0; h < hosts; ++h) {
    auto& host = tb.addHost();
    const auto sw =
        static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(switches) - 1));
    tb.link(host, 0, tb.sw(sw), nextPort[sw]++, 1'000'000'000,
            sim::Time::us(1));
  }
  tb.installAllRoutes();

  // All ordered pairs can ping.
  int expected = 0, delivered = 0;
  for (std::size_t a = 0; a < hosts; ++a) {
    for (std::size_t b = 0; b < hosts; ++b) {
      if (a == b) continue;
      ++expected;
      tb.host(b).bindUdp(static_cast<std::uint16_t>(9000 + a),
                         [&](const host::UdpDatagram&) { ++delivered; });
      tb.host(a).sendUdp(tb.host(b).mac(), tb.host(b).ip(),
                         static_cast<std::uint16_t>(9000 + a),
                         static_cast<std::uint16_t>(9000 + a), {});
    }
  }
  tb.sim().run();
  EXPECT_EQ(delivered, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u));

// ----------------------------------------------- assembler round trips

class AssemblerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssemblerFuzz, DisassembleAssembleIsIdentity) {
  sim::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const auto program = randomProgram(rng);
    const auto text = core::disassemble(program);
    auto result = core::assemble(text);
    ASSERT_TRUE(std::holds_alternative<core::Program>(result)) << text;
    EXPECT_EQ(std::get<core::Program>(result), program) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz,
                         ::testing::Values(7u, 77u, 777u));

// ------------------------------------------- trace decoder adversarial

class TraceDecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Pure garbage bytes: decode must flag, never crash or accept.
TEST_P(TraceDecoderFuzz, DecoderSurvivesGarbage) {
  sim::Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniformInt(0, 400));
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    }
    const auto trace = sim::decodeTrace(bytes);
    // Random bytes essentially never form a valid image (magic + version
    // + exact record size), so a clean result implies an empty record set
    // at most — never fabricated structure.
    if (trace.ok) {
      EXPECT_TRUE(trace.records.empty());
    }
  }
}

// A VALID serialized ring, then truncated at every possible length and
// corrupted at random offsets: the decoder must either succeed on the
// intact image or flag (ok=false) — and must never mis-parse silently.
TEST_P(TraceDecoderFuzz, DecoderFlagsTruncationAndCorruption) {
  // The corpus is built by recording into a live ring; under TPP_TRACE=OFF
  // record() is a no-op and there is no intact image to corrupt.
  if (!sim::kTraceCompiledIn) GTEST_SKIP() << "built with TPP_TRACE=OFF";
  sim::Rng rng(GetParam() + 5000);
  sim::Tracer tracer(64);
  const std::uint32_t a1 = tracer.actor("sw0");
  const std::uint32_t a2 = tracer.actor("host0");
  for (int i = 0; i < 100; ++i) {
    tracer.record(sim::Time::us(i), sim::TraceKind::EventFire,
                  i % 2 != 0 ? a1 : a2, static_cast<std::uint16_t>(i % 5),
                  static_cast<std::uint32_t>(i));
  }
  const auto bytes = tracer.serialize();
  const auto intact = sim::decodeTrace(bytes);
  ASSERT_TRUE(intact.ok) << intact.error;
  ASSERT_EQ(intact.records.size(), 64u);  // ring wrapped at capacity
  EXPECT_EQ(intact.overwritten, 36u);
  EXPECT_EQ(intact.actors, (std::vector<std::string>{"sw0", "host0"}));

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    const auto t = sim::decodeTrace(prefix);
    EXPECT_FALSE(t.ok) << "truncation at " << cut << " not flagged";
    EXPECT_FALSE(t.error.empty());
    EXPECT_LE(t.records.size(), intact.records.size());
  }

  for (int round = 0; round < 300; ++round) {
    auto corrupted = bytes;
    const auto flips = rng.uniformInt(1, 8);
    for (std::int64_t f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(rng.uniformInt(
          0, static_cast<std::int64_t>(corrupted.size()) - 1));
      corrupted[at] ^= static_cast<std::uint8_t>(
          1u << rng.uniformInt(0, 7));
    }
    const auto t = sim::decodeTrace(corrupted);  // must not crash
    if (t.ok) {
      // Flips can land in record payloads (timestamps, args) the decoder
      // cannot validate — but the structure it reports must stay sane.
      EXPECT_EQ(t.records.size(), intact.records.size());
      EXPECT_EQ(t.actors.size(), intact.actors.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceDecoderFuzz,
                         ::testing::Values(13u, 1313u, 131313u));

// -------------------------------------- hop-record parser adversarial

class RecordSplitFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// splitStackRecordsChecked on adversarial ExecutedTpps: random headers
// (stackPointer pointing anywhere, including past pmem), random pmem sizes,
// random valuesPerHop. Must never crash; `truncated` flags the lies.
TEST_P(RecordSplitFuzz, SplitSurvivesCorruptHeaders) {
  sim::Rng rng(GetParam());
  for (int round = 0; round < 2000; ++round) {
    core::ExecutedTpp tpp;
    tpp.header.pmemWords = static_cast<std::uint8_t>(rng.uniformInt(0, 64));
    // Deliberately decoupled from pmemWords: a corrupted echo can claim
    // any stack pointer, including far beyond the actual buffer.
    tpp.header.stackPointer =
        static_cast<std::uint16_t>(rng.uniformInt(0, 1024));
    tpp.pmem.resize(static_cast<std::size_t>(rng.uniformInt(0, 64)));
    for (auto& w : tpp.pmem) {
      w = static_cast<std::uint32_t>(rng.uniformInt(0, 1 << 30));
    }
    const auto valuesPerHop =
        static_cast<std::size_t>(rng.uniformInt(1, 8));
    const auto spWords = static_cast<std::size_t>(rng.uniformInt(0, 20));
    const auto split =
        host::splitStackRecordsChecked(tpp, valuesPerHop, spWords);
    // Whatever was parsed must actually fit in the real pmem buffer.
    EXPECT_LE(spWords + split.records.size() * valuesPerHop,
              std::max(tpp.pmem.size(), spWords));
    for (const auto& rec : split.records) {
      EXPECT_EQ(rec.size(), valuesPerHop);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordSplitFuzz,
                         ::testing::Values(21u, 2121u, 212121u));

}  // namespace
}  // namespace tpp
