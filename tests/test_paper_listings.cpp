// The paper's program listings, verbatim, assembled and executed — each
// test asserts the behaviour the surrounding prose describes.
#include <gtest/gtest.h>

#include <variant>

#include "src/core/assembler.hpp"
#include "src/core/memory_map.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"

namespace tpp {
namespace {

using host::Testbed;

core::Program assembleOrDie(std::string_view src) {
  auto r = core::assemble(src);
  if (auto* e = std::get_if<core::AssemblyError>(&r)) {
    ADD_FAILURE() << "line " << e->line << ": " << e->message;
    return {};
  }
  return std::get<core::Program>(r);
}

struct ListingsFixture : public ::testing::Test {
  Testbed tb;
  std::optional<core::ExecutedTpp> result;

  void SetUp() override {
    buildChain(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(1)});
    tb.host(0).onTppResult(
        [this](const core::ExecutedTpp& t) { result = t; });
  }

  const core::ExecutedTpp& probe(const core::Program& program) {
    result.reset();
    tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), program);
    tb.sim().run(tb.sim().now() + sim::Time::ms(5));
    EXPECT_TRUE(result.has_value());
    return *result;
  }
};

TEST_F(ListingsFixture, Section21QueueSizeQuery) {
  // "the instruction PUSH [Queue:QueueSize] copies the queue register onto
  //  packet memory. As the packet traverses each hop, the packet memory
  //  records snapshots of queue size statistics at each hop." — §2.1
  const auto& tpp = probe(assembleOrDie(R"(
      .reserve 3
      PUSH [Queue:QueueSize]
  )"));
  // Fig 1: SP advances one word per hop: 0x0 -> 0x4 -> 0x8 -> 0xc.
  EXPECT_EQ(tpp.header.stackPointer, 0xc);
  EXPECT_EQ(tpp.header.hopNumber, 3);
  EXPECT_EQ(host::splitStackRecords(tpp, 1).size(), 3u);
}

TEST_F(ListingsFixture, Section22Phase1Collect) {
  // The RCP* rate controller's collect program, verbatim from §2.2.
  const auto& tpp = probe(assembleOrDie(R"(
      PUSH [Switch:SwitchID]
      PUSH [Link:QueueSize]
      PUSH [Link:RX-Utilization]
      PUSH [Link:RCP-RateRegister]
  )"));
  const auto records = host::splitStackRecords(tpp, 4);
  ASSERT_EQ(records.size(), 3u);
  // Switch ids identify each hop; the receiver "simply echos a fully
  // executed TPP back to the sender" (tested by getting a result at all).
  EXPECT_EQ(records[0][0], 1u);
  EXPECT_EQ(records[1][0], 2u);
  EXPECT_EQ(records[2][0], 3u);
}

TEST_F(ListingsFixture, Section22Phase3UpdateExecutesOnlyOnBottleneck) {
  // "CEXEC reg,mask,value ensures the TPP executes on a switch only if
  //  (reg & mask) == value… it sends a TPP that only executes on the
  //  bottleneck switch link to update its per-link state." — §2.2
  const std::uint32_t newRateKbps = 4321;
  auto program = assembleOrDie(R"(
      .define BottleneckSwitchID 0x2
      .init 2 4321
      CEXEC [Switch:SwitchID], 0xFFFFFFFF, $BottleneckSwitchID
      STORE [Link:RCP-RateRegister], [Packet:2]
  )");
  probe(program);
  // Only switch 2 (the middle hop) took the write; its egress toward h1 is
  // port 1. Switches 1 and 3 must be untouched.
  EXPECT_EQ(tb.sw(1).scratchRead(core::addr::RcpRateRegister, 1),
            newRateKbps);
  EXPECT_EQ(tb.sw(0).scratchRead(core::addr::RcpRateRegister, 1), 0u);
  EXPECT_EQ(tb.sw(2).scratchRead(core::addr::RcpRateRegister, 1), 0u);
}

TEST_F(ListingsFixture, Section22CstoreSemantics) {
  // "CSTORE dst,cond,src stores src into dst only if dst==cond" — §2.2
  const auto& success = probe(assembleOrDie(R"(
      CSTORE [Sram:Word0], 0, 7
  )"));
  EXPECT_EQ(success.header.faultCode, core::Fault::None);
  EXPECT_EQ(tb.sw(0).scratchRead(core::kSramBase), 7u);
  // Second run: dst is now 7 on every switch, cond 0 no longer matches.
  probe(assembleOrDie("CSTORE [Sram:Word0], 0, 9\n"));
  EXPECT_EQ(tb.sw(0).scratchRead(core::kSramBase), 7u);
}

TEST_F(ListingsFixture, Section23NdbTrace) {
  // The forwarding-plane debugger's per-packet program, verbatim — §2.3.
  const auto& tpp = probe(assembleOrDie(R"(
      PUSH [Switch:ID]
      PUSH [PacketMetadata:MatchedEntryID]
      PUSH [PacketMetadata:InputPort]
  )"));
  const auto records = host::splitStackRecords(tpp, 3);
  ASSERT_EQ(records.size(), 3u);
  for (const auto& rec : records) {
    EXPECT_GT(rec[0], 0u);   // a real switch id
    EXPECT_GT(rec[1], 0u);   // a version-stamped entry
    EXPECT_EQ(rec[2], 0u);   // arrived on the left port everywhere
  }
}

TEST_F(ListingsFixture, Section322HopAddressing) {
  // "LOAD [Switch:SwitchID], [Packet:hop[1]] will copy the switch ID into
  //  PacketMemory[1] on the first hop, PacketMemory[17] on the second
  //  hop…" (with 16-byte per-hop size; ours uses words) — §3.2.2
  auto program = assembleOrDie(R"(
      .mode hop
      .perhop 4
      .reserve 12
      LOAD [Switch:SwitchID], [Packet:hop[1]]
  )");
  const auto& tpp = probe(program);
  EXPECT_EQ(tpp.pmem[1], 1u);   // hop 0: base 0*4, offset 1
  EXPECT_EQ(tpp.pmem[5], 2u);   // hop 1: base 1*4, offset 1
  EXPECT_EQ(tpp.pmem[9], 3u);   // hop 2
}

TEST_F(ListingsFixture, Section321PacketMetadataAddresses) {
  // "the memory locations 0xa000 + {0x1,0x2} could refer to the input port
  //  and the selected route" — §3.2.1, exercised with literal addresses.
  const auto& tpp = probe(assembleOrDie(R"(
      .reserve 6
      PUSH [0xA001]
      PUSH [0xA002]
  )"));
  const auto records = host::splitStackRecords(tpp, 2);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0][0], 0u);  // input port
  EXPECT_EQ(records[0][1], 1u);  // selected route (egress port)
}

}  // namespace
}  // namespace tpp
