#include "src/asic/switch.hpp"

#include <gtest/gtest.h>

#include "src/apps/ndb.hpp"
#include "src/core/assembler.hpp"
#include "src/core/memory_map.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"

namespace tpp::asic {
namespace {

namespace addr = core::addr;
using host::Testbed;

struct ChainFixture : public ::testing::Test {
  Testbed tb;
  void SetUp() override {
    host::LinkParams lp{1'000'000'000, sim::Time::us(1)};
    buildChain(tb, /*switches=*/3, lp);
  }
  host::Host& h0() { return tb.host(0); }
  host::Host& h1() { return tb.host(1); }
};

TEST_F(ChainFixture, UdpDeliveredAcrossChain) {
  std::vector<std::uint8_t> payload{1, 2, 3, 4};
  int delivered = 0;
  h1().bindUdp(5000, [&](const host::UdpDatagram& d) {
    ++delivered;
    EXPECT_EQ(d.srcIp, h0().ip());
    EXPECT_EQ(d.payload.size(), 4u);
    EXPECT_EQ(d.payload[2], 3);
  });
  h0().sendUdp(h1().mac(), h1().ip(), 4000, 5000, payload);
  tb.sim().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(tb.sw(0).stats().totalRxPackets, 1u);
  EXPECT_EQ(tb.sw(0).stats().totalTxPackets, 1u);
  EXPECT_EQ(tb.sw(2).stats().totalTxPackets, 1u);
}

TEST_F(ChainFixture, UnroutableDestinationCountsMiss) {
  h0().sendUdp(net::MacAddress::fromIndex(99), net::Ipv4Address::forHost(99),
               1, 2, {});
  tb.sim().run();
  EXPECT_EQ(tb.sw(0).stats().forwardingMisses, 1u);
  EXPECT_EQ(tb.sw(0).stats().totalDrops, 1u);
}

TEST_F(ChainFixture, ProbeExecutesOnEveryHop) {
  core::ProgramBuilder b;
  b.push(addr::SwitchId);
  b.reserve(8);
  std::optional<core::ExecutedTpp> result;
  h0().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  h0().sendProbe(h1().mac(), h1().ip(), *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.hopNumber, 3);
  const auto records = host::splitStackRecords(*result, 1);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0][0], tb.sw(0).config().switchId);
  EXPECT_EQ(records[1][0], tb.sw(1).config().switchId);
  EXPECT_EQ(records[2][0], tb.sw(2).config().switchId);
}

TEST_F(ChainFixture, PacketMetadataReflectsForwarding) {
  core::ProgramBuilder b;
  b.push(addr::InputPort);
  b.push(addr::OutputPort);
  b.push(addr::MatchedTable);
  b.reserve(9);
  std::optional<core::ExecutedTpp> result;
  h0().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  h0().sendProbe(h1().mac(), h1().ip(), *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  const auto records = host::splitStackRecords(*result, 3);
  ASSERT_EQ(records.size(), 3u);
  for (const auto& rec : records) {
    EXPECT_EQ(rec[0], 0u);  // arrived on the left port
    EXPECT_EQ(rec[1], 1u);  // departed on the right port
    // TCAM is empty, dst IP routes via L3 (table id 2).
    EXPECT_EQ(rec[2], 2u);
  }
}

TEST_F(ChainFixture, SwitchStatsNamespaceReadable) {
  core::ProgramBuilder b;
  b.push(addr::PortCount);
  b.push(addr::L3TableVersion);
  b.push(addr::TotalRxPackets);
  b.reserve(9);
  std::optional<core::ExecutedTpp> result;
  h0().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  h0().sendProbe(h1().mac(), h1().ip(), *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  const auto records = host::splitStackRecords(*result, 3);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0][0], tb.sw(0).config().ports);
  EXPECT_EQ(records[0][1], tb.sw(0).l3().version());
  EXPECT_GE(records[0][2], 1u);  // the probe itself was received
}

TEST_F(ChainFixture, TimeRegistersTickWithSimClock) {
  core::ProgramBuilder b;
  b.push(addr::TimeLo);
  b.reserve(4);
  std::vector<std::uint32_t> times;
  h0().onTppResult([&](const core::ExecutedTpp& t) {
    const auto recs = host::splitStackRecords(t, 1);
    if (!recs.empty()) times.push_back(recs[0][0]);
  });
  h0().sendProbe(h1().mac(), h1().ip(), *b.build());
  tb.sim().schedule(sim::Time::ms(1), [&] {
    h0().sendProbe(h1().mac(), h1().ip(), *b.build());
  });
  tb.sim().run();
  ASSERT_EQ(times.size(), 2u);
  // Second probe hit switch 0 roughly 1 ms later.
  EXPECT_NEAR(static_cast<double>(times[1] - times[0]), 1e6, 1e5);
}

TEST_F(ChainFixture, ScratchWriteReadAcrossPackets) {
  // Program 1 stores 0xCAFE into global SRAM on every hop; program 2 reads
  // it back — end-hosts communicating through switch memory.
  auto store = core::assemble("STORE [Sram:Word0], 0xCAFE\n");
  auto load = core::assemble(".reserve 4\nPUSH [Sram:Word0]\n");
  std::vector<core::ExecutedTpp> results;
  h0().onTppResult([&](const core::ExecutedTpp& t) { results.push_back(t); });
  h0().sendProbe(h1().mac(), h1().ip(), std::get<core::Program>(store));
  tb.sim().schedule(sim::Time::ms(1), [&] {
    h0().sendProbe(h1().mac(), h1().ip(), std::get<core::Program>(load));
  });
  tb.sim().run();
  ASSERT_EQ(results.size(), 2u);
  const auto records = host::splitStackRecords(results[1], 1);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0][0], 0xCAFEu);
  EXPECT_EQ(tb.sw(1).scratchRead(core::kSramBase), 0xCAFEu);
}

TEST_F(ChainFixture, WriteToStatisticFaults) {
  auto program = core::assemble("STORE [Queue:QueueSize], 1\n");
  std::optional<core::ExecutedTpp> result;
  h0().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  h0().sendProbe(h1().mac(), h1().ip(), std::get<core::Program>(program));
  tb.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.faultCode, core::Fault::ReadOnlyViolation);
}

TEST_F(ChainFixture, GrantEnforcementFaultsForeignTask) {
  // Install grants: task 1 owns SRAM words [0,4); task 2 owns [4,8).
  for (std::size_t i = 0; i < tb.switchCount(); ++i) {
    ASSERT_TRUE(tb.sw(i).sramAllocator().allocate(1, 4));
    ASSERT_TRUE(tb.sw(i).sramAllocator().allocate(2, 4));
  }
  // Task 2 writing task 1's word 0 must fault.
  core::ProgramBuilder b;
  b.task(2);
  b.storeImm(core::kSramBase + 0, 1);
  std::optional<core::ExecutedTpp> result;
  h0().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  h0().sendProbe(h1().mac(), h1().ip(), *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.faultCode, core::Fault::GrantViolation);
  EXPECT_EQ(tb.sw(0).scratchRead(core::kSramBase), 0u);

  // Task 2 writing its own window succeeds.
  core::ProgramBuilder ok;
  ok.task(2);
  ok.storeImm(core::kSramBase + 4, 7);
  result.reset();
  h0().sendProbe(h1().mac(), h1().ip(), *ok.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.faultCode, core::Fault::None);
  EXPECT_EQ(tb.sw(0).scratchRead(core::kSramBase + 4), 7u);
}

TEST_F(ChainFixture, PerPortScratchResolvesAgainstEgress) {
  // Seed different values in each switch's egress-port scratch word 0.
  tb.sw(0).scratchWrite(core::kPortScratchBase, 111, /*port=*/1);
  tb.sw(1).scratchWrite(core::kPortScratchBase, 222, /*port=*/1);
  tb.sw(2).scratchWrite(core::kPortScratchBase, 333, /*port=*/1);
  core::ProgramBuilder b;
  b.push(core::kPortScratchBase);
  b.reserve(4);
  std::optional<core::ExecutedTpp> result;
  h0().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  h0().sendProbe(h1().mac(), h1().ip(), *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  const auto records = host::splitStackRecords(*result, 1);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0][0], 111u);
  EXPECT_EQ(records[1][0], 222u);
  EXPECT_EQ(records[2][0], 333u);
}

TEST_F(ChainFixture, UnmappedAddressFaults) {
  core::ProgramBuilder b;
  b.push(0x0042);
  b.reserve(2);
  std::optional<core::ExecutedTpp> result;
  h0().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  h0().sendProbe(h1().mac(), h1().ip(), *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.faultCode, core::Fault::UnmappedAddress);
  // TPPs forward like normal packets even after faulting.
  EXPECT_EQ(result->header.hopNumber, 3);
}

TEST_F(ChainFixture, TcpuDisabledSkipsExecution) {
  // Rebuild with TCPU off at every switch.
  Testbed tb2;
  asic::SwitchConfig cfg;
  cfg.tcpuEnabled = false;
  buildChain(tb2, 2, host::LinkParams{1'000'000'000, sim::Time::us(1)}, cfg);
  core::ProgramBuilder b;
  b.push(addr::SwitchId);
  b.reserve(4);
  std::optional<core::ExecutedTpp> result;
  tb2.host(1).onTppArrival([&](const core::ExecutedTpp& t) { result = t; });
  tb2.host(0).sendProbe(tb2.host(1).mac(), tb2.host(1).ip(), *b.build());
  tb2.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.hopNumber, 0);  // nobody executed it
  EXPECT_EQ(result->header.stackPointer, 0);
}

TEST_F(ChainFixture, EdgeFilterStripsAtIngressSwitch) {
  tb.sw(0).edgeFilter().setPortPolicy(0, core::EdgePolicy::Strip);
  bool tppArrived = false;
  int udpArrived = 0;
  h1().onTppArrival([&](const core::ExecutedTpp&) { tppArrived = true; });
  h1().bindUdp(5000, [&](const host::UdpDatagram&) { ++udpArrived; });
  core::ProgramBuilder b;
  b.push(addr::SwitchId);
  b.reserve(4);
  std::vector<std::uint8_t> payload{9};
  h0().sendUdpWithTpp(h1().mac(), h1().ip(), 4000, 5000, payload, *b.build());
  tb.sim().run();
  EXPECT_FALSE(tppArrived);   // shim removed at the edge
  EXPECT_EQ(udpArrived, 1);   // inner datagram still delivered
}

TEST_F(ChainFixture, UtilizationRegisterTracksOfferedLoad) {
  // Saturate the first link for a while, then probe.
  host::FlowSpec spec;
  spec.dstMac = h1().mac();
  spec.dstIp = h1().ip();
  spec.rateBps = 500e6;  // half line rate
  spec.payloadBytes = 1000;
  host::PacedFlow flow(h0(), spec, 1);
  flow.start(sim::Time::zero());
  std::optional<core::ExecutedTpp> result;
  h0().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  core::ProgramBuilder b;
  b.push(addr::TxUtilization);
  b.reserve(4);
  tb.sim().schedule(sim::Time::ms(50), [&] {
    h0().sendProbe(h1().mac(), h1().ip(), *b.build());
  });
  tb.sim().run(sim::Time::ms(60));
  flow.stop();
  ASSERT_TRUE(result);
  const auto records = host::splitStackRecords(*result, 1);
  ASSERT_EQ(records.size(), 3u);
  // Offered load ≈ 50% of capacity, in ppm.
  EXPECT_NEAR(records[0][0], 500'000.0, 60'000.0);
}

TEST(SwitchUnit, TcamDropActionDropsPacket) {
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(1)});
  TcamKey k;
  k.ipDst = {tb.host(1).ip(), 32};
  tb.sw(0).tcam().add(k, TcamAction{0, std::nullopt, /*drop=*/true}, 100);
  int delivered = 0;
  tb.host(1).bindUdp(5000, [&](const host::UdpDatagram&) { ++delivered; });
  tb.host(0).sendUdp(tb.host(1).mac(), tb.host(1).ip(), 4000, 5000, {});
  tb.sim().run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(tb.sw(0).stats().totalDrops, 1u);
}

TEST(SwitchUnit, TcamQueueSteeringVisibleToTpp) {
  Testbed tb;
  buildChain(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(1)});
  // Steer everything to h1 into queue 5 of the egress port.
  TcamKey k;
  k.ipDst = {tb.host(1).ip(), 32};
  tb.sw(0).tcam().add(k, TcamAction{1, std::uint8_t{5}, false}, 100);
  core::ProgramBuilder b;
  b.push(addr::QueueId);
  b.push(addr::MatchedTable);
  b.reserve(2);
  std::optional<core::ExecutedTpp> result;
  tb.host(0).onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  tb.host(0).sendProbe(tb.host(1).mac(), tb.host(1).ip(), *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  const auto records = host::splitStackRecords(*result, 2);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0][0], 5u);
  EXPECT_EQ(records[0][1], 3u);  // TCAM
}

TEST(SwitchUnit, BufferOverflowDropsAndCounts) {
  Testbed tb;
  asic::SwitchConfig cfg;
  cfg.bufferPerQueueBytes = 3000;  // tiny buffer
  // 10 Mb/s bottleneck behind a 1G edge.
  host::LinkParams edge{1'000'000'000, sim::Time::us(1)};
  host::LinkParams bottleneck{10'000'000, sim::Time::us(1)};
  buildDumbbell(tb, 1, edge, bottleneck, cfg);
  host::FlowSpec spec;
  spec.dstMac = tb.host(1).mac();
  spec.dstIp = tb.host(1).ip();
  spec.rateBps = 100e6;  // 10x the bottleneck
  host::PacedFlow flow(tb.host(0), spec, 1);
  flow.start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(20));
  flow.stop();
  tb.sim().run();
  const auto& qs = tb.sw(0).queueStats(1, 0);
  EXPECT_GT(qs.droppedPackets, 0u);
  EXPECT_GT(tb.sw(0).portStats(1).txDrops, 0u);
  EXPECT_LE(qs.bytes, cfg.bufferPerQueueBytes);
}

TEST(SwitchUnit, PipelineDelayDefersForwarding) {
  Testbed tb;
  asic::SwitchConfig cfg;
  cfg.pipelineDelay = sim::Time::us(100);
  buildChain(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(1)}, cfg);
  sim::Time deliveredAt;
  tb.host(1).bindUdp(5000, [&](const host::UdpDatagram&) {
    deliveredAt = tb.sim().now();
  });
  tb.host(0).sendUdp(tb.host(1).mac(), tb.host(1).ip(), 4000, 5000, {});
  tb.sim().run();
  EXPECT_GE(deliveredAt, sim::Time::us(100));
}

}  // namespace
}  // namespace tpp::asic
