#include "src/apps/aggregate_limiter.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/memory_map.hpp"
#include "src/host/topology.hpp"

namespace tpp::apps {
namespace {

using host::Testbed;

// Senders on the left of a dumbbell, receivers on the right; the token
// counter lives in the left switch's SRAM (switch id 1), which every
// sender's packets traverse.
struct LimiterFixture : public ::testing::Test {
  static constexpr std::uint16_t kToken = core::kSramBase + 16;
  static constexpr double kAggregateBps = 8e6;  // 1 MB/s
  Testbed tb;
  std::unique_ptr<TokenRefiller> refiller;

  void SetUp() override {
    buildDumbbell(tb, 4, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{1'000'000'000, sim::Time::us(10)});
  }

  // Sender i (host i) runs a gated line-rate flow to receiver (host 4+i).
  struct Gated {
    std::unique_ptr<host::PacedFlow> flow;
    std::unique_ptr<TokenBucketSender> sender;
  };
  Gated makeSender(std::size_t i) {
    host::FlowSpec spec;
    spec.dstMac = tb.host(4 + i).mac();
    spec.dstIp = tb.host(4 + i).ip();
    spec.srcPort = static_cast<std::uint16_t>(27000 + i);
    spec.dstPort = spec.srcPort;
    spec.payloadBytes = 1000;
    spec.rateBps = 100e6;  // uncapped burst rate; tokens do the limiting
    Gated g;
    g.flow = std::make_unique<host::PacedFlow>(tb.host(i), spec, i + 1);
    TokenBucketSender::Config cfg;
    cfg.tokenAddress = kToken;
    cfg.chunkBytes = 5000;
    cfg.jitterSeed = 1000 + i;
    g.sender = std::make_unique<TokenBucketSender>(tb.host(i), *g.flow, cfg);
    return g;
  }

  void startRefiller(std::size_t viaReceiver = 0) {
    TokenRefiller::Config cfg;
    // The refiller runs on a right-side host and probes across the
    // bottleneck toward a left-side host, traversing switch 1.
    cfg.dstMac = tb.host(viaReceiver).mac();
    cfg.dstIp = tb.host(viaReceiver).ip();
    cfg.tokenAddress = kToken;
    cfg.aggregateRateBps = kAggregateBps;
    cfg.bucketBytes = 20'000;
    cfg.period = sim::Time::ms(5);
    refiller = std::make_unique<TokenRefiller>(tb.host(7), cfg);
    refiller->start(sim::Time::zero());
  }
};

TEST_F(LimiterFixture, RefillerFillsTheBucket) {
  startRefiller();
  tb.sim().run(sim::Time::ms(100));
  refiller->stop();
  EXPECT_GT(refiller->refills(), 2u);
  const auto tokens = *tb.sw(0).scratchRead(kToken);
  EXPECT_GT(tokens, 0u);
  EXPECT_LE(tokens, 20'000u);  // capped at the bucket
}

TEST_F(LimiterFixture, SingleSenderGetsTheAggregateRate) {
  startRefiller();
  auto g = makeSender(0);
  g.sender->start(sim::Time::ms(1));
  tb.sim().run(sim::Time::sec(3));
  g.sender->stop();
  refiller->stop();
  const double achievedBps = static_cast<double>(g.flow->bytesSent()) * 8 /
                             3.0;
  EXPECT_NEAR(achievedBps, kAggregateBps, 0.25 * kAggregateBps);
}

TEST_F(LimiterFixture, AggregateHoldsAcrossSenders) {
  startRefiller();
  std::vector<Gated> senders;
  for (std::size_t i = 0; i < 3; ++i) {
    senders.push_back(makeSender(i));
    senders.back().sender->start(sim::Time::ms(1));
  }
  tb.sim().run(sim::Time::sec(3));
  std::uint64_t total = 0;
  for (auto& g : senders) {
    total += g.flow->bytesSent();
    g.sender->stop();
  }
  refiller->stop();
  const double aggregateAchieved = static_cast<double>(total) * 8 / 3.0;
  // The sum across senders respects the shared budget (+bucket slack).
  EXPECT_LT(aggregateAchieved, 1.35 * kAggregateBps);
  EXPECT_GT(aggregateAchieved, 0.5 * kAggregateBps);
  // And nobody starves outright.
  for (auto& g : senders) {
    EXPECT_GT(g.flow->bytesSent(), 0u);
  }
}

TEST_F(LimiterFixture, NoTokensNoTraffic) {
  // Without a refiller the counter stays 0 and gated flows never open.
  auto g = makeSender(0);
  g.sender->start(sim::Time::ms(1));
  tb.sim().run(sim::Time::ms(500));
  g.sender->stop();
  EXPECT_EQ(g.flow->bytesSent(), 0u);
  EXPECT_EQ(g.sender->bytesClaimed(), 0u);
}

TEST_F(LimiterFixture, ClaimsAreAccountedExactly) {
  startRefiller();
  auto g = makeSender(0);
  g.sender->start(sim::Time::ms(1));
  tb.sim().run(sim::Time::sec(1));
  g.sender->stop();
  refiller->stop();
  // Everything transmitted was claimed first.
  EXPECT_LE(g.flow->bytesSent(), g.sender->bytesClaimed());
  EXPECT_GT(g.sender->bytesClaimed(), 0u);
}

}  // namespace
}  // namespace tpp::apps
