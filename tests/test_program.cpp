#include "src/core/program.hpp"

#include <gtest/gtest.h>

#include "src/core/memory_map.hpp"
#include "src/net/byte_io.hpp"

namespace tpp::core {
namespace {

TEST(ProgramBuilder, ImmediatesPrecedeStack) {
  ProgramBuilder b;
  b.cexec(addr::SwitchId, 0xffffffff, 5);
  b.push(addr::QueueBytes);
  b.reserve(4);
  const auto p = b.build();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->initialPmem.size(), 2u);          // mask + value
  EXPECT_EQ(p->initialPmem[0], 0xffffffffu);
  EXPECT_EQ(p->initialPmem[1], 5u);
  EXPECT_EQ(p->pmemWords, 6);                    // 2 imms + 4 reserved
  EXPECT_EQ(p->initialSp, 8);                    // stack starts after imms
}

TEST(ProgramBuilder, CstoreReportsOperandOffset) {
  ProgramBuilder b;
  b.imm(0xaaaa);  // occupy slot 0
  std::uint8_t off = 0;
  b.cstore(kSramBase, 1, 2, &off);
  const auto p = b.build();
  ASSERT_TRUE(p);
  EXPECT_EQ(off, 1);
  EXPECT_EQ(p->initialPmem[1], 1u);  // cond
  EXPECT_EQ(p->initialPmem[2], 2u);  // src
  EXPECT_EQ(p->instructions.back().pmemOff, 1);
}

TEST(ProgramBuilder, StoreImmStagesValue) {
  ProgramBuilder b;
  b.storeImm(addr::RcpRateRegister, 9000);
  const auto p = b.build();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->instructions[0].op, Opcode::Store);
  EXPECT_EQ(p->initialPmem[p->instructions[0].pmemOff], 9000u);
}

TEST(ProgramBuilder, ModeAndPerHopAndTask) {
  ProgramBuilder b;
  b.mode(AddressingMode::Hop).perHop(3).task(42).reserve(9);
  b.load(addr::SwitchId, 0);
  const auto p = b.build();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->mode, AddressingMode::Hop);
  EXPECT_EQ(p->perHopWords, 3);
  EXPECT_EQ(p->taskId, 42);
}

TEST(ProgramBuilder, RejectsOverlongPrograms) {
  ProgramBuilder b;
  for (int i = 0; i < 300; ++i) b.push(addr::QueueBytes);
  EXPECT_FALSE(b.build().has_value());
}

TEST(ProgramBuilder, RejectsOverlongPacketMemory) {
  ProgramBuilder b;
  b.push(addr::QueueBytes);
  b.reserve(255);
  b.imm(1);  // 256 words total
  EXPECT_FALSE(b.build().has_value());
}

TEST(Program, WireBytesFormula) {
  ProgramBuilder b;
  b.push(addr::QueueBytes);
  b.push(addr::SwitchId);
  b.reserve(10);
  const auto p = b.build();
  // header 12 + 2*4 instr + 10*4 pmem.
  EXPECT_EQ(p->wireBytes(), 12u + 8u + 40u);
}

TEST(Program, PaperOverheadNumbers) {
  // §3.3: 5 instructions = 20 bytes of instruction overhead.
  ProgramBuilder b;
  for (int i = 0; i < 5; ++i) b.push(addr::QueueBytes);
  b.reserve(0);
  const auto p = b.build();
  EXPECT_EQ(p->instructions.size() * kInstructionSize, 20u);
}

TEST(BuildTppFrame, LayoutAndEtherType) {
  ProgramBuilder b;
  b.push(addr::QueueBytes);
  b.reserve(2);
  const auto program = *b.build();
  const std::vector<std::uint8_t> payload{0xde, 0xad};
  auto packet = buildTppFrame(net::MacAddress::fromIndex(9),
                              net::MacAddress::fromIndex(8), program,
                              net::kEtherTypeIpv4, payload);
  const auto eth = net::EthernetHeader::parse(packet->span());
  ASSERT_TRUE(eth);
  EXPECT_EQ(eth->etherType, net::kEtherTypeTpp);
  EXPECT_EQ(eth->dst, net::MacAddress::fromIndex(9));

  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  ASSERT_TRUE(view);
  EXPECT_EQ(view->innerEtherType(), net::kEtherTypeIpv4);
  EXPECT_EQ(packet->bytes()[view->payloadOffset()], 0xde);
}

TEST(BuildTppFrame, PadsToMinimumFrame) {
  ProgramBuilder b;
  b.push(addr::QueueBytes);
  b.reserve(1);
  auto packet = buildTppFrame(net::MacAddress::fromIndex(1),
                              net::MacAddress::fromIndex(2), *b.build());
  EXPECT_GE(packet->size(), net::kMinFrameSize);
}

TEST(BuildTppFrame, InitialPmemIsSerialized) {
  ProgramBuilder b;
  b.cexec(addr::SwitchId, 0xff, 0x12);
  const auto program = *b.build();
  auto packet = buildTppFrame(net::MacAddress::fromIndex(1),
                              net::MacAddress::fromIndex(2), program);
  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  EXPECT_EQ(view->pmemWord(0), 0xffu);
  EXPECT_EQ(view->pmemWord(1), 0x12u);
}

TEST(Shim, InsertThenStripRestoresFrame) {
  // A plain IPv4 frame.
  auto packet = net::Packet::make(80, 0x33);
  net::EthernetHeader eth{net::MacAddress::fromIndex(5),
                          net::MacAddress::fromIndex(6),
                          net::kEtherTypeIpv4};
  eth.write(packet->span());
  const auto original = packet->bytes();

  ProgramBuilder b;
  b.push(addr::QueueBytes);
  b.reserve(4);
  insertTppShim(*packet, *b.build());

  const auto shimmed = net::EthernetHeader::parse(packet->span());
  EXPECT_EQ(shimmed->etherType, net::kEtherTypeTpp);
  EXPECT_GT(packet->size(), original.size());

  ASSERT_TRUE(stripTppShim(*packet));
  EXPECT_EQ(packet->bytes(), original);
}

TEST(Shim, StripRejectsNonTpp) {
  auto packet = net::Packet::make(80);
  net::EthernetHeader eth{net::MacAddress::fromIndex(5),
                          net::MacAddress::fromIndex(6),
                          net::kEtherTypeIpv4};
  eth.write(packet->span());
  EXPECT_FALSE(stripTppShim(*packet));
}

TEST(ParseExecuted, RecoversProgramAndMemory) {
  ProgramBuilder b;
  b.push(addr::QueueBytes);
  b.push(addr::SwitchId);
  b.reserve(4);
  const auto program = *b.build();
  auto packet = buildTppFrame(net::MacAddress::fromIndex(1),
                              net::MacAddress::fromIndex(2), program);
  auto view = TppView::at(*packet, net::kEthernetHeaderSize);
  view->setPmemWord(0, 0xa0);
  view->setHopNumber(1);

  const auto executed = parseExecuted(*packet);
  ASSERT_TRUE(executed);
  EXPECT_EQ(executed->instructions.size(), 2u);
  EXPECT_EQ(executed->instructions[0].op, Opcode::Push);
  EXPECT_EQ(executed->pmem.size(), 4u);
  EXPECT_EQ(executed->pmem[0], 0xa0u);
  EXPECT_EQ(executed->header.hopNumber, 1);
}

TEST(ParseExecuted, RejectsTruncation) {
  auto packet = net::Packet::make(net::kEthernetHeaderSize + 4);
  EXPECT_FALSE(parseExecuted(*packet));
}

}  // namespace
}  // namespace tpp::core
