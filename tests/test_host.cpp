#include "src/host/host.hpp"

#include <gtest/gtest.h>

#include "src/core/memory_map.hpp"
#include "src/host/topology.hpp"

namespace tpp::host {
namespace {

struct TwoHosts : public ::testing::Test {
  Testbed tb;
  void SetUp() override {
    buildChain(tb, 1, LinkParams{1'000'000'000, sim::Time::us(1)});
  }
  Host& a() { return tb.host(0); }
  Host& b() { return tb.host(1); }
};

TEST_F(TwoHosts, IdentityFromIndex) {
  EXPECT_EQ(a().mac(), net::MacAddress::fromIndex(1));
  EXPECT_EQ(a().ip(), net::Ipv4Address::forHost(1));
  EXPECT_NE(a().mac(), b().mac());
}

TEST_F(TwoHosts, UdpPayloadRoundTrip) {
  std::vector<std::uint8_t> payload(100);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  std::vector<std::uint8_t> got;
  b().bindUdp(7777, [&](const UdpDatagram& d) {
    got.assign(d.payload.begin(), d.payload.end());
    EXPECT_EQ(d.srcPort, 1234);
    EXPECT_EQ(d.dstPort, 7777);
  });
  a().sendUdp(b().mac(), b().ip(), 1234, 7777, payload);
  tb.sim().run();
  EXPECT_EQ(got, payload);
}

TEST_F(TwoHosts, UnboundPortIsSilentlyDropped) {
  a().sendUdp(b().mac(), b().ip(), 1, 9999, {});
  tb.sim().run();
  EXPECT_EQ(b().packetsReceived(), 1u);  // arrived, no handler
}

TEST_F(TwoHosts, WrongMacIsIgnored) {
  int delivered = 0;
  b().bindUdp(7777, [&](const UdpDatagram&) { ++delivered; });
  // Correct IP but bogus destination MAC: L3 still routes it, but the host
  // NIC filter rejects it.
  a().sendUdp(net::MacAddress::fromIndex(77), b().ip(), 1, 7777, {});
  tb.sim().run();
  EXPECT_EQ(delivered, 0);
}

TEST_F(TwoHosts, ProbeEchoRoundTrip) {
  core::ProgramBuilder builder;
  builder.push(core::addr::SwitchId);
  builder.reserve(4);
  std::optional<core::ExecutedTpp> result;
  a().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  a().sendProbe(b().mac(), b().ip(), *builder.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.hopNumber, 1);
  EXPECT_EQ(b().probesEchoed(), 1u);
}

TEST_F(TwoHosts, EchoedResultIsNotReExecuted) {
  // The echo travels back through the same switch; its contents must be
  // frozen (it is payload, not a live TPP).
  core::ProgramBuilder builder;
  builder.push(core::addr::SwitchId);
  builder.reserve(4);
  std::optional<core::ExecutedTpp> result;
  a().onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  a().sendProbe(b().mac(), b().ip(), *builder.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.hopNumber, 1);  // not 2
  EXPECT_EQ(result->header.stackPointer, 4);
}

TEST_F(TwoHosts, ShimmedDataPacketDeliversBothWays) {
  core::ProgramBuilder builder;
  builder.push(core::addr::SwitchId);
  builder.reserve(4);
  std::optional<core::ExecutedTpp> arrived;
  int delivered = 0;
  b().onTppArrival([&](const core::ExecutedTpp& t) { arrived = t; });
  b().bindUdp(4242, [&](const UdpDatagram& d) {
    ++delivered;
    EXPECT_EQ(d.payload.size(), 3u);
  });
  const std::vector<std::uint8_t> payload{7, 8, 9};
  a().sendUdpWithTpp(b().mac(), b().ip(), 4242, 4242, payload, *builder.build());
  tb.sim().run();
  ASSERT_TRUE(arrived);
  EXPECT_EQ(arrived->header.hopNumber, 1);
  EXPECT_EQ(delivered, 1);
}

TEST_F(TwoHosts, CountersTrackTraffic) {
  a().sendUdp(b().mac(), b().ip(), 1, 2, {});
  a().sendUdp(b().mac(), b().ip(), 1, 2, {});
  tb.sim().run();
  EXPECT_EQ(a().packetsSent(), 2u);
  EXPECT_EQ(b().packetsReceived(), 2u);
  EXPECT_GE(b().bytesReceived(), 2 * net::kMinFrameSize);
}

TEST_F(TwoHosts, RebindReplacesHandler) {
  int first = 0, second = 0;
  b().bindUdp(5, [&](const UdpDatagram&) { ++first; });
  b().bindUdp(5, [&](const UdpDatagram&) { ++second; });
  a().sendUdp(b().mac(), b().ip(), 1, 5, {});
  tb.sim().run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace tpp::host
