// Golden-trace regression suite (`ctest -L golden`): each scenario in
// golden_scenarios.cpp must reproduce its checked-in trace byte-for-byte.
// Any intentional change to trace content (new record sites, new kinds,
// event-ordering changes) shows up here first; refresh the files with
//     cmake --build build -t regen-golden
// and review the diff like any other source change.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/sim/trace.hpp"
#include "tests/golden_scenarios.hpp"

namespace tpp::test {
namespace {

std::vector<std::uint8_t> readFile(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = static_cast<bool>(in);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class GoldenTrace : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenTrace, MatchesCheckedInBytes) {
  if (!sim::kTraceCompiledIn) GTEST_SKIP() << "built with TPP_TRACE=OFF";
  const std::string name = GetParam();
  const auto produced = runGoldenScenario(name);

  // Whatever else, the scenario's own output must be a clean trace image.
  const auto decodedProduced = sim::decodeTrace(produced);
  ASSERT_TRUE(decodedProduced.ok) << decodedProduced.error;
  ASSERT_FALSE(decodedProduced.records.empty());
  EXPECT_EQ(decodedProduced.overwritten, 0u)
      << "scenario outgrew the golden ring; shorten it or enlarge "
         "kGoldenRing (and regen)";

  bool ok = false;
  const std::string path =
      std::string(TPP_GOLDEN_DIR) + "/" + goldenFileName(name);
  const auto golden = readFile(path, ok);
  ASSERT_TRUE(ok) << "missing golden file " << path
                  << " — run: cmake --build build -t regen-golden";

  if (produced != golden) {
    const auto decodedGolden = sim::decodeTrace(golden);
    FAIL() << "trace for \"" << name << "\" diverged from " << path << "\n"
           << "  produced: " << produced.size() << " bytes, "
           << decodedProduced.records.size() << " records\n"
           << "  golden:   " << golden.size() << " bytes, "
           << decodedGolden.records.size() << " records\n"
           << "If the change is intentional: cmake --build build -t "
              "regen-golden, then review the diff.";
  }
}

// Same scenario, run twice in one process: guards against hidden global
// state (statics, leaked registrations) making goldens order-dependent.
TEST_P(GoldenTrace, RerunIsBitStable) {
  if (!sim::kTraceCompiledIn) GTEST_SKIP() << "built with TPP_TRACE=OFF";
  const std::string name = GetParam();
  EXPECT_EQ(runGoldenScenario(name), runGoldenScenario(name));
}

// The sharded wrapper with a single shard must be invisible: same scenario
// driven through ShardedSimulator::run() + the per-shard recorder merge,
// compared against the same checked-in golden bytes as the legacy path.
TEST_P(GoldenTrace, ShardedWrapperMatchesCheckedInBytes) {
  if (!sim::kTraceCompiledIn) GTEST_SKIP() << "built with TPP_TRACE=OFF";
  const std::string name = GetParam();
  const auto produced =
      runGoldenScenario(name, GoldenRunner::ShardedWrapper);

  bool ok = false;
  const std::string path =
      std::string(TPP_GOLDEN_DIR) + "/" + goldenFileName(name);
  const auto golden = readFile(path, ok);
  ASSERT_TRUE(ok) << "missing golden file " << path
                  << " — run: cmake --build build -t regen-golden";
  EXPECT_EQ(produced, golden)
      << "1-shard ShardedSimulator run diverged from the legacy golden for \""
      << name << "\" — the wrapper must be bit-invisible";
}

INSTANTIATE_TEST_SUITE_P(Scenarios, GoldenTrace,
                         ::testing::ValuesIn(goldenScenarioNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace tpp::test
