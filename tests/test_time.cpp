#include "src/sim/time.hpp"

#include <gtest/gtest.h>

namespace tpp::sim {
namespace {

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time{}.nanos(), 0);
  EXPECT_EQ(Time{}, Time::zero());
}

TEST(Time, NamedConstructorsScale) {
  EXPECT_EQ(Time::ns(7).nanos(), 7);
  EXPECT_EQ(Time::us(7).nanos(), 7'000);
  EXPECT_EQ(Time::ms(7).nanos(), 7'000'000);
  EXPECT_EQ(Time::sec(7).nanos(), 7'000'000'000);
}

TEST(Time, SecondsFromDouble) {
  EXPECT_EQ(Time::seconds(1.5).nanos(), 1'500'000'000);
  EXPECT_EQ(Time::seconds(0.000001).nanos(), 1'000);
}

TEST(Time, ConversionsRoundTrip) {
  const Time t = Time::us(1234);
  EXPECT_DOUBLE_EQ(t.toSeconds(), 0.001234);
  EXPECT_DOUBLE_EQ(t.toMicros(), 1234.0);
  EXPECT_DOUBLE_EQ(t.toMillis(), 1.234);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(Time::ms(1) + Time::us(500), Time::us(1500));
  EXPECT_EQ(Time::ms(2) - Time::ms(3), Time::ms(-1));
  EXPECT_EQ(Time::us(10) * 3, Time::us(30));
  EXPECT_EQ(Time::us(10) / 2, Time::us(5));
  EXPECT_DOUBLE_EQ(Time::ms(1) / Time::us(250), 4.0);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::ms(1);
  t += Time::ms(2);
  EXPECT_EQ(t, Time::ms(3));
  t -= Time::ms(1);
  EXPECT_EQ(t, Time::ms(2));
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::ns(1), Time::ns(2));
  EXPECT_GT(Time::sec(1), Time::ms(999));
  EXPECT_LE(Time::ms(1), Time::us(1000));
  EXPECT_GE(Time::ms(1), Time::us(1000));
}

TEST(Time, MaxActsAsInfinity) {
  EXPECT_GT(Time::max(), Time::sec(100 * 365 * 24 * 3600LL));
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(Time::ns(5).toString(), "5ns");
  EXPECT_EQ(Time::us(5).toString(), "5.000us");
  EXPECT_EQ(Time::ms(5).toString(), "5.000ms");
  EXPECT_EQ(Time::sec(5).toString(), "5.000000s");
}

TEST(TransmissionTime, MatchesHandComputation) {
  // 1000 bytes at 1 Gb/s = 8 us.
  EXPECT_EQ(transmissionTime(1000, 1'000'000'000), Time::us(8));
  // 1500 bytes at 10 Mb/s = 1.2 ms.
  EXPECT_EQ(transmissionTime(1500, 10'000'000), Time::us(1200));
}

TEST(TransmissionTime, NoOverflowForJumboOnSlowLink) {
  // 9000 bytes = 72000 bits at 1 kb/s = 72 s; the ns math must not
  // overflow 64 bits on the way there.
  EXPECT_EQ(transmissionTime(9000, 1000), Time::sec(72));
  // And a genuinely huge transfer still fits.
  EXPECT_EQ(transmissionTime(1'000'000'000, 1000),
            Time::sec(8'000'000'000LL / 1000));
}

TEST(TransmissionTime, MinimumFrameAtLineRate) {
  // 64B + 24B Ethernet overhead at 10G ≈ 70.4 ns; we charge overhead at the
  // Link layer, so the raw call for 88 bytes:
  EXPECT_EQ(transmissionTime(88, 10'000'000'000ULL), Time::ns(70));
}

}  // namespace
}  // namespace tpp::sim
