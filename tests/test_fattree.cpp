// Fat-tree fabric + ECMP multipath forwarding.
#include <gtest/gtest.h>

#include <set>

#include "src/core/memory_map.hpp"
#include "src/core/program.hpp"
#include "src/host/collector.hpp"
#include "src/host/topology.hpp"

namespace tpp::host {
namespace {

struct FatTreeFixture : public ::testing::Test {
  Testbed tb;
  FatTreeIndex ix;
  void SetUp() override {
    ix = buildFatTree(tb, 4, LinkParams{1'000'000'000, sim::Time::us(1)});
  }

  int ping(std::size_t from, std::size_t to) {
    int delivered = 0;
    tb.host(to).bindUdp(9000, [&](const UdpDatagram&) { ++delivered; });
    tb.host(from).sendUdp(tb.host(to).mac(), tb.host(to).ip(), 9000, 9000,
                          {});
    tb.sim().run();
    return delivered;
  }
};

TEST_F(FatTreeFixture, DimensionsForK4) {
  EXPECT_EQ(ix.coreCount(), 4u);
  EXPECT_EQ(ix.hostCount(), 16u);
  EXPECT_EQ(tb.hostCount(), 16u);
  EXPECT_EQ(tb.switchCount(), 4u + 4 * 4u);  // cores + 4 pods x (2+2)
}

TEST_F(FatTreeFixture, SameEdgeDelivery) {
  EXPECT_EQ(ping(ix.host(0, 0, 0), ix.host(0, 0, 1)), 1);
}

TEST_F(FatTreeFixture, IntraPodCrossEdgeDelivery) {
  EXPECT_EQ(ping(ix.host(0, 0, 0), ix.host(0, 1, 1)), 1);
}

TEST_F(FatTreeFixture, CrossPodDelivery) {
  EXPECT_EQ(ping(ix.host(0, 0, 0), ix.host(3, 1, 1)), 1);
}

TEST_F(FatTreeFixture, AllPairsFromOneHost) {
  for (std::size_t to = 1; to < ix.hostCount(); ++to) {
    Testbed tb2;
    auto ix2 = buildFatTree(tb2, 4, LinkParams{1'000'000'000,
                                               sim::Time::us(1)});
    (void)ix2;
    int delivered = 0;
    tb2.host(to).bindUdp(9000, [&](const UdpDatagram&) { ++delivered; });
    tb2.host(0).sendUdp(tb2.host(to).mac(), tb2.host(to).ip(), 9000, 9000,
                        {});
    tb2.sim().run();
    EXPECT_EQ(delivered, 1) << "host 0 -> host " << to;
  }
}

TEST_F(FatTreeFixture, EcmpSpreadsFlowsAcrossCores) {
  // Many distinct flows from pod 0 to pod 1 must exercise more than one
  // core switch.
  for (std::uint16_t flow = 0; flow < 32; ++flow) {
    tb.host(ix.host(0, 0, 0))
        .sendUdp(tb.host(ix.host(1, 0, 0)).mac(),
                 tb.host(ix.host(1, 0, 0)).ip(),
                 static_cast<std::uint16_t>(10000 + flow), 9000, {});
  }
  tb.sim().run();
  std::size_t coresTouched = 0;
  for (std::size_t c = 0; c < ix.coreCount(); ++c) {
    if (tb.sw(ix.coreSw(c)).stats().totalRxPackets > 0) ++coresTouched;
  }
  EXPECT_GE(coresTouched, 2u);
}

TEST_F(FatTreeFixture, OneFlowStaysOnOnePath) {
  // All packets of one 5-tuple hash to the same path: exactly one core
  // sees them.
  for (int i = 0; i < 16; ++i) {
    tb.host(ix.host(0, 0, 0))
        .sendUdp(tb.host(ix.host(2, 0, 0)).mac(),
                 tb.host(ix.host(2, 0, 0)).ip(), 12345, 9000, {});
  }
  tb.sim().run();
  std::size_t coresTouched = 0;
  std::uint64_t packetsAtCores = 0;
  for (std::size_t c = 0; c < ix.coreCount(); ++c) {
    const auto rx = tb.sw(ix.coreSw(c)).stats().totalRxPackets;
    if (rx > 0) ++coresTouched;
    packetsAtCores += rx;
  }
  EXPECT_EQ(coresTouched, 1u);
  EXPECT_EQ(packetsAtCores, 16u);
}

TEST_F(FatTreeFixture, CrossPodPathIsFiveHopsWithEcmpMetadata) {
  core::ProgramBuilder b;
  b.push(core::addr::SwitchId);
  b.push(core::addr::AltRoutes);
  b.reserve(16);
  std::optional<core::ExecutedTpp> result;
  auto& src = tb.host(ix.host(0, 0, 0));
  auto& dst = tb.host(ix.host(1, 0, 0));
  src.onTppResult([&](const core::ExecutedTpp& t) { result = t; });
  src.sendProbe(dst.mac(), dst.ip(), *b.build());
  tb.sim().run();
  ASSERT_TRUE(result);
  EXPECT_EQ(result->header.hopNumber, 5);
  const auto records = splitStackRecords(*result, 2);
  ASSERT_EQ(records.size(), 5u);
  // Upward hops have ECMP alternates; the final edge hop's only
  // "alternate" is the covering default route (no ECMP siblings).
  EXPECT_GE(records[0][1], 1u);   // edge: 2-way up
  EXPECT_GE(records[1][1], 1u);   // agg: 2-way up
  EXPECT_EQ(records[4][1], 1u);   // dest edge: /32 + covering 0/0 default
}

}  // namespace
}  // namespace tpp::host
