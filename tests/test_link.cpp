#include "src/net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/ethernet.hpp"

namespace tpp::net {
namespace {

class SinkNode : public Node {
 public:
  explicit SinkNode(sim::Simulator& s) : Node("sink"), sim_(s) {}
  void receive(PacketPtr packet, std::size_t port) override {
    arrivals.push_back({sim_.now(), packet->size(), port});
  }
  struct Arrival {
    sim::Time at;
    std::size_t size;
    std::size_t port;
  };
  std::vector<Arrival> arrivals;

 private:
  sim::Simulator& sim_;
};

class LinkTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  SinkNode a{sim};
  SinkNode b{sim};
};

TEST_F(LinkTest, DeliveryTimeIsSerializationPlusPropagation) {
  auto link = DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                  sim::Time::us(10));
  // 1000-byte buffer + 24B overhead at 1G = 8.192 us serialization.
  a.txChannel(0)->transmit(Packet::make(1000));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].at, sim::Time::ns(8192) + sim::Time::us(10));
}

TEST_F(LinkTest, TransmitReturnsSerializationEnd) {
  auto link = DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                  sim::Time::us(10));
  const auto end = a.txChannel(0)->transmit(Packet::make(1000));
  EXPECT_EQ(end, sim::Time::ns(8192));
}

TEST_F(LinkTest, BackToBackSerializesSequentially) {
  auto link = DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                  sim::Time::zero());
  a.txChannel(0)->transmit(Packet::make(1000));
  const auto end2 = a.txChannel(0)->transmit(Packet::make(1000));
  EXPECT_EQ(end2, sim::Time::ns(2 * 8192));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(b.arrivals[1].at - b.arrivals[0].at, sim::Time::ns(8192));
}

TEST_F(LinkTest, DuplexDirectionsAreIndependent) {
  auto link = DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                  sim::Time::us(1));
  a.txChannel(0)->transmit(Packet::make(500));
  b.txChannel(0)->transmit(Packet::make(500));
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 1u);
  // Full duplex: both arrive at the same instant, no contention.
  EXPECT_EQ(a.arrivals[0].at, b.arrivals[0].at);
}

TEST_F(LinkTest, ArrivalPortMatchesWiring) {
  auto link = DuplexLink::connect(sim, a, 2, b, 5, 1'000'000'000,
                                  sim::Time::zero());
  a.txChannel(2)->transmit(Packet::make(100));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].port, 5u);
}

TEST_F(LinkTest, IdleTracking) {
  auto link = DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                  sim::Time::zero());
  auto* ch = a.txChannel(0);
  EXPECT_TRUE(ch->idleAt(sim.now()));
  const auto end = ch->transmit(Packet::make(1000));
  EXPECT_FALSE(ch->idleAt(sim.now()));
  EXPECT_TRUE(ch->idleAt(end));
}

TEST_F(LinkTest, DeliveryCounters) {
  auto link = DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                  sim::Time::zero());
  a.txChannel(0)->transmit(Packet::make(100));
  a.txChannel(0)->transmit(Packet::make(200));
  sim.run();
  EXPECT_EQ(a.txChannel(0)->packetsDelivered(), 2u);
  EXPECT_EQ(a.txChannel(0)->bytesDelivered(), 300u);
}

TEST_F(LinkTest, SlowLinkRates) {
  auto link = DuplexLink::connect(sim, a, 0, b, 0, 10'000'000,  // 10 Mb/s
                                  sim::Time::zero());
  a.txChannel(0)->transmit(Packet::make(1000));  // +24B → 819.2 us
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].at, sim::Time::ns(819'200));
}

TEST_F(LinkTest, TransmitWithNoReceiverCountsDetachedDrop) {
  // Regression: transmitting into a detached channel must not crash — the
  // packet is accounted as a detached drop instead.
  auto link = DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                  sim::Time::zero());
  auto* ch = a.txChannel(0);
  link->aToB().detachReceiver();
  const auto end = ch->transmit(Packet::make(1000));
  EXPECT_EQ(end, sim::Time::ns(8192));  // serializer still charged
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 0u);
  EXPECT_EQ(ch->packetsDetachedDropped(), 1u);
  EXPECT_EQ(ch->packetsDelivered(), 0u);
}

TEST_F(LinkTest, DetachWhileInFlightDropsAtDelivery) {
  // Regression: a receiver detached while a packet is on the wire must not
  // be dereferenced at delivery time.
  auto link = DuplexLink::connect(sim, a, 0, b, 0, 1'000'000'000,
                                  sim::Time::ms(1));
  a.txChannel(0)->transmit(Packet::make(100));
  sim.scheduleAt(sim::Time::us(500), [&] { link->aToB().detachReceiver(); });
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 0u);
  EXPECT_EQ(a.txChannel(0)->packetsDetachedDropped(), 1u);
}

TEST(Node, AttachPortGrowsSparsely) {
  sim::Simulator sim;
  SinkNode n(sim);
  SinkNode peer(sim);
  auto l1 = DuplexLink::connect(sim, n, 3, peer, 0, 1'000'000,
                                sim::Time::zero());
  EXPECT_EQ(n.portCount(), 4u);
  EXPECT_EQ(n.txChannel(0), nullptr);
  EXPECT_NE(n.txChannel(3), nullptr);
}

}  // namespace
}  // namespace tpp::net
