#include "src/host/collector.hpp"

#include <gtest/gtest.h>

namespace tpp::host {
namespace {

core::ExecutedTpp stackTpp(std::vector<std::uint32_t> pmem,
                           std::uint16_t spBytes, std::uint8_t hops = 0) {
  core::ExecutedTpp t;
  t.header.pmemWords = static_cast<std::uint8_t>(pmem.size());
  t.header.stackPointer = spBytes;
  t.header.hopNumber = hops;
  t.pmem = std::move(pmem);
  return t;
}

TEST(SplitStackRecords, EvenRecords) {
  const auto t = stackTpp({1, 2, 3, 4, 5, 6}, 24);
  const auto recs = splitStackRecords(t, 2);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0], (HopRecord{1, 2}));
  EXPECT_EQ(recs[2], (HopRecord{5, 6}));
}

TEST(SplitStackRecords, PartialTailDiscarded) {
  const auto t = stackTpp({1, 2, 3, 4, 5}, 20);
  const auto recs = splitStackRecords(t, 2);
  EXPECT_EQ(recs.size(), 2u);
}

TEST(SplitStackRecords, RespectsStackPointerNotCapacity) {
  // 8 words allocated, only 4 pushed.
  const auto t = stackTpp({1, 2, 3, 4, 0, 0, 0, 0}, 16);
  EXPECT_EQ(splitStackRecords(t, 2).size(), 2u);
}

TEST(SplitStackRecords, SkipsImmediateRegion) {
  // Two immediates, then one record of two values.
  const auto t = stackTpp({0xff, 0x02, 10, 20}, 16);
  const auto recs = splitStackRecords(t, 2, /*initialSpWords=*/2);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0], (HopRecord{10, 20}));
}

TEST(SplitStackRecords, ZeroValuesPerHopIsEmpty) {
  const auto t = stackTpp({1, 2}, 8);
  EXPECT_TRUE(splitStackRecords(t, 0).empty());
}

TEST(SplitHopRecords, UsesHopCountAndPerHopSize) {
  core::ExecutedTpp t;
  t.header.perHopWords = 2;
  t.header.hopNumber = 2;
  t.header.pmemWords = 6;
  t.pmem = {1, 2, 3, 4, 99, 99};  // third record not reached
  const auto recs = splitHopRecords(t);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0], (HopRecord{1, 2}));
  EXPECT_EQ(recs[1], (HopRecord{3, 4}));
}

TEST(SplitHopRecords, TruncatesAtMemoryEnd) {
  core::ExecutedTpp t;
  t.header.perHopWords = 4;
  t.header.hopNumber = 3;  // claims 3 hops but memory holds 2 records
  t.header.pmemWords = 8;
  t.pmem = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(splitHopRecords(t).size(), 2u);
}

TEST(SplitHopRecords, ZeroPerHopIsEmpty) {
  core::ExecutedTpp t;
  t.header.perHopWords = 0;
  t.header.hopNumber = 3;
  EXPECT_TRUE(splitHopRecords(t).empty());
}

TEST(HopSampleAverager, MeansPerHopAndColumn) {
  HopSampleAverager avg(2);
  avg.add({{10, 100}, {20, 200}});
  avg.add({{30, 300}, {40, 400}});
  EXPECT_EQ(avg.probeCount(), 2u);
  EXPECT_EQ(avg.hopCount(), 2u);
  EXPECT_DOUBLE_EQ(avg.mean(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(avg.mean(0, 1), 200.0);
  EXPECT_DOUBLE_EQ(avg.mean(1, 0), 30.0);
  EXPECT_DOUBLE_EQ(avg.mean(1, 1), 300.0);
}

TEST(HopSampleAverager, ToleratesVaryingHopCounts) {
  HopSampleAverager avg(1);
  avg.add({{10}});
  avg.add({{20}, {100}});
  EXPECT_DOUBLE_EQ(avg.mean(0, 0), 15.0);
  EXPECT_DOUBLE_EQ(avg.mean(1, 0), 100.0);  // only one sample at hop 1
}

TEST(HopSampleAverager, OutOfRangeIsZero) {
  HopSampleAverager avg(1);
  avg.add({{10}});
  EXPECT_DOUBLE_EQ(avg.mean(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(avg.mean(0, 5), 0.0);
}

// ------------------------------------------- checked multi-word records
//
// The sketch read probe (monitor::CountMinSketch::readProbeProgram) burns
// two CEXEC immediates and pushes 1 + rows words at the one pinned switch:
// a 5-word record behind a 2-word immediate region for the default d = 4.
// These pin the hole-aware splitter on exactly that shape.

TEST(SplitStackRecordsChecked, SketchReadRecordParses) {
  // [imm, imm | epoch, row0..row3], sp = 7 words.
  const auto t = stackTpp({0xffffffff, 1, 3, 51, 52, 50, 53}, 28);
  const auto split = splitStackRecordsChecked(t, 5, /*initialSpWords=*/2);
  EXPECT_FALSE(split.truncated);
  ASSERT_TRUE(split.complete(1));
  ASSERT_EQ(split.records.size(), 1u);
  EXPECT_EQ(split.records[0], (HopRecord{3, 51, 52, 50, 53}));
}

TEST(SplitStackRecordsChecked, PartialSketchRecordIsTruncatedNotDropped) {
  // A TPP-unaware hop forwarded mid-push: only 3 of the 5 words landed.
  const auto t = stackTpp({0xffffffff, 1, 3, 51, 52}, 20);
  const auto split = splitStackRecordsChecked(t, 5, /*initialSpWords=*/2);
  EXPECT_TRUE(split.truncated);
  EXPECT_TRUE(split.records.empty());
  EXPECT_FALSE(split.complete(1));
}

TEST(SplitStackRecordsChecked, CexecSkippedHopsYieldShortTrace) {
  // Two TCPU hops on the path, but the probe is CEXEC-pinned to one
  // switch: one whole record, structurally clean, short of 2 hops.
  const auto t = stackTpp({0xffffffff, 1, 3, 51, 52, 50, 53, 0, 0, 0, 0, 0},
                          28, /*hops=*/2);
  const auto split = splitStackRecordsChecked(t, 5, /*initialSpWords=*/2);
  EXPECT_FALSE(split.truncated);
  ASSERT_EQ(split.records.size(), 1u);
  EXPECT_TRUE(split.complete(1));
  EXPECT_FALSE(split.complete(2));
}

TEST(SplitStackRecordsChecked, StackPointerPastPmemIsTruncated) {
  // A corrupted header claims more pushed words than packet memory holds.
  const auto t = stackTpp({0xffffffff, 1, 3, 51}, 48);
  const auto split = splitStackRecordsChecked(t, 5, /*initialSpWords=*/2);
  EXPECT_TRUE(split.truncated);
  EXPECT_TRUE(split.records.empty());
}

TEST(SplitStackRecordsChecked, StackPointerBelowImmediatesIsTruncated) {
  const auto t = stackTpp({0xffffffff, 1}, 4);
  const auto split = splitStackRecordsChecked(t, 5, /*initialSpWords=*/2);
  EXPECT_TRUE(split.truncated);
  EXPECT_TRUE(split.records.empty());
}

TEST(HopSampleAverager, ResetClears) {
  HopSampleAverager avg(1);
  avg.add({{10}});
  avg.reset();
  EXPECT_EQ(avg.probeCount(), 0u);
  EXPECT_EQ(avg.hopCount(), 0u);
  EXPECT_DOUBLE_EQ(avg.mean(0, 0), 0.0);
}

}  // namespace
}  // namespace tpp::host
