#include "src/apps/rcpstar.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/memory_map.hpp"
#include "src/host/topology.hpp"

namespace tpp::apps {
namespace {

using host::Testbed;

constexpr std::uint64_t kBottleneck = 10'000'000;

TEST(RcpPrograms, CollectMatchesPaperPhase1) {
  const auto p = makeRcpCollectProgram(6);
  ASSERT_EQ(p.instructions.size(), 6u);
  for (const auto& ins : p.instructions) {
    EXPECT_EQ(ins.op, core::Opcode::Push);
  }
  EXPECT_EQ(p.instructions[0].addr, core::addr::SwitchId);
  EXPECT_EQ(p.instructions[4].addr, core::addr::RcpRateRegister);
  // The boot-epoch column detects reboot-wiped switch state downstream.
  EXPECT_EQ(p.instructions[5].addr, core::addr::SwitchBootEpoch);
  EXPECT_EQ(p.pmemWords, 36);
}

TEST(RcpPrograms, UpdateIsCexecGuardedStore) {
  const auto p = makeRcpUpdateProgram(/*switchId=*/2, /*rateKbps=*/5000);
  ASSERT_EQ(p.instructions.size(), 2u);
  EXPECT_EQ(p.instructions[0].op, core::Opcode::Cexec);
  EXPECT_EQ(p.instructions[0].addr, core::addr::SwitchId);
  EXPECT_EQ(p.initialPmem[0], 0xffffffffu);
  EXPECT_EQ(p.initialPmem[1], 2u);
  EXPECT_EQ(p.instructions[1].op, core::Opcode::Store);
  EXPECT_EQ(p.instructions[1].addr, core::addr::RcpRateRegister);
  EXPECT_EQ(p.initialPmem[p.instructions[1].pmemOff], 5000u);
}

struct RcpStarFixture : public ::testing::Test {
  Testbed tb;
  struct ControlledFlow {
    std::unique_ptr<host::PacedFlow> flow;
    std::unique_ptr<RcpStarController> controller;
  };
  std::vector<std::unique_ptr<ControlledFlow>> flows;

  void SetUp() override {
    asic::SwitchConfig scfg;
    scfg.bufferPerQueueBytes = 64 * 1024;
    scfg.utilizationWindow = sim::Time::ms(50);
    buildDumbbell(tb, 3, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{kBottleneck, sim::Time::ms(1)}, scfg);
    // Control-plane initialization (§2.2 footnote): every link's rate
    // register starts at its capacity.
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      for (std::size_t port = 0; port < tb.sw(s).config().ports; ++port) {
        tb.sw(s).scratchWrite(
            core::addr::RcpRateRegister,
            static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(port) / 1000),
            port);
      }
    }
  }

  ControlledFlow& addFlow(std::size_t pair, sim::Time startAt) {
    auto cf = std::make_unique<ControlledFlow>();
    host::FlowSpec spec;
    spec.dstMac = tb.host(3 + pair).mac();
    spec.dstIp = tb.host(3 + pair).ip();
    spec.srcPort = static_cast<std::uint16_t>(21000 + pair);
    spec.dstPort = spec.srcPort;
    spec.payloadBytes = 1000;
    spec.rateBps = 100e3;
    cf->flow = std::make_unique<host::PacedFlow>(tb.host(pair), spec,
                                                 pair + 1);
    RcpStarController::Config ccfg;
    ccfg.params.alpha = 0.5;
    ccfg.params.beta = 1.0;
    ccfg.params.rttSeconds = 0.05;
    ccfg.period = sim::Time::ms(50);
    ccfg.dstMac = spec.dstMac;
    ccfg.dstIp = spec.dstIp;
    cf->controller = std::make_unique<RcpStarController>(tb.host(pair),
                                                         *cf->flow, ccfg);
    cf->flow->start(startAt);
    cf->controller->start(startAt);
    flows.push_back(std::move(cf));
    return *flows.back();
  }

  double registerRateBps() {
    return static_cast<double>(
               *tb.sw(0).scratchRead(core::addr::RcpRateRegister, 3)) *
           1000.0;
  }
};

TEST_F(RcpStarFixture, SingleFlowClimbsToCapacity) {
  auto& cf = addFlow(0, sim::Time::zero());
  tb.sim().run(sim::Time::sec(5));
  EXPECT_NEAR(cf.controller->currentRateBps(),
              static_cast<double>(kBottleneck),
              0.25 * static_cast<double>(kBottleneck));
  EXPECT_GT(cf.controller->updatesSent(), 50u);
  cf.flow->stop();
  cf.controller->stop();
}

TEST_F(RcpStarFixture, IdentifiesBottleneckSwitch) {
  auto& cf = addFlow(0, sim::Time::zero());
  tb.sim().run(sim::Time::sec(2));
  // The 10 Mb/s link is the left switch's egress (switch id 1).
  EXPECT_EQ(cf.controller->bottleneckSwitchId(),
            tb.sw(0).config().switchId);
  ASSERT_EQ(cf.controller->linkRatesBps().size(), 2u);
  EXPECT_LT(cf.controller->linkRatesBps()[0],
            cf.controller->linkRatesBps()[1]);
  cf.flow->stop();
  cf.controller->stop();
}

TEST_F(RcpStarFixture, EndHostWritesReachTheRegister) {
  // With two flows the fair share is C/2 — distinguishable from the
  // control-plane initialization value C, so a changed register proves the
  // end-hosts' CEXEC-guarded STOREs landed in the ASIC.
  auto& f1 = addFlow(0, sim::Time::zero());
  auto& f2 = addFlow(1, sim::Time::zero());
  tb.sim().run(sim::Time::sec(6));
  EXPECT_LT(registerRateBps(), 0.85 * static_cast<double>(kBottleneck));
  EXPECT_NEAR(registerRateBps(), kBottleneck / 2.0, 0.3 * kBottleneck);
  for (auto* cf : {&f1, &f2}) {
    cf->flow->stop();
    cf->controller->stop();
  }
}

TEST_F(RcpStarFixture, TwoFlowsConvergeToFairShare) {
  addFlow(0, sim::Time::zero());
  addFlow(1, sim::Time::zero());
  tb.sim().run(sim::Time::sec(8));
  for (auto& cf : flows) {
    EXPECT_NEAR(cf->controller->currentRateBps(), kBottleneck / 2.0,
                0.3 * kBottleneck);
    cf->flow->stop();
    cf->controller->stop();
  }
}

TEST_F(RcpStarFixture, LateFlowForcesReconvergence) {
  auto& first = addFlow(0, sim::Time::zero());
  tb.sim().run(sim::Time::sec(4));
  const double alone = first.controller->currentRateBps();
  addFlow(1, tb.sim().now());
  tb.sim().run(sim::Time::sec(12));
  const double shared = first.controller->currentRateBps();
  EXPECT_LT(shared, 0.8 * alone);
  for (auto& cf : flows) {
    cf->flow->stop();
    cf->controller->stop();
  }
}

TEST_F(RcpStarFixture, RateSeriesIsRecorded) {
  auto& cf = addFlow(0, sim::Time::zero());
  tb.sim().run(sim::Time::sec(1));
  EXPECT_GE(cf.controller->rateSeries().size(), 15u);  // one per period
  cf.flow->stop();
  cf.controller->stop();
}

}  // namespace
}  // namespace tpp::apps
