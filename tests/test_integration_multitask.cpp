// End-to-end integration: multiple TPP tasks sharing one network, isolated
// by control-plane SRAM grants and edge security policies (paper §3.2
// "Multiple tasks" and §4).
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/microburst.hpp"
#include "src/apps/ndb.hpp"
#include "src/apps/rcpstar.hpp"
#include "src/core/memory_map.hpp"
#include "src/host/topology.hpp"
#include "src/sim/random.hpp"

namespace tpp {
namespace {

using host::Testbed;

constexpr std::uint64_t kBottleneck = 50'000'000;

struct MultiTaskFixture : public ::testing::Test {
  Testbed tb;

  void SetUp() override {
    asic::SwitchConfig cfg;
    cfg.bufferPerQueueBytes = 128 * 1024;
    buildDumbbell(tb, 2, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{kBottleneck, sim::Time::us(100)}, cfg);
    for (std::size_t s = 0; s < tb.switchCount(); ++s) {
      for (std::size_t port = 0; port < tb.sw(s).config().ports; ++port) {
        tb.sw(s).scratchWrite(
            core::addr::RcpRateRegister,
            static_cast<std::uint32_t>(tb.sw(s).portCapacityBps(port) / 1000),
            port);
      }
    }
  }
};

TEST_F(MultiTaskFixture, RcpStarMicroburstAndNdbCoexist) {
  // Task A: an RCP*-controlled flow from h0 to h2.
  host::FlowSpec spec;
  spec.dstMac = tb.host(2).mac();
  spec.dstIp = tb.host(2).ip();
  spec.srcPort = 21000;
  spec.dstPort = 21000;
  spec.rateBps = 1e6;
  host::PacedFlow flow(tb.host(0), spec, 1);
  apps::RcpStarController::Config rcfg;
  rcfg.period = sim::Time::ms(20);
  rcfg.params.rttSeconds = 0.02;
  rcfg.dstMac = spec.dstMac;
  rcfg.dstIp = spec.dstIp;
  rcfg.taskId = 1;
  apps::RcpStarController controller(tb.host(0), flow, rcfg);

  // Task B: micro-burst monitoring from the same host, different task id.
  apps::MicroburstMonitor::Config mcfg;
  mcfg.dstMac = spec.dstMac;
  mcfg.dstIp = spec.dstIp;
  mcfg.interval = sim::Time::ms(1);
  mcfg.taskId = 2;
  apps::MicroburstMonitor monitor(tb.host(0), mcfg);

  // Task C: ndb tracing on a second flow from h1 to h3.
  apps::TraceCollector collector(tb.host(3));

  flow.start(sim::Time::zero());
  controller.start(sim::Time::zero());
  monitor.start(sim::Time::zero());
  for (int i = 0; i < 10; ++i) {
    tb.sim().schedule(sim::Time::ms(100 * i), [&] {
      tb.host(1).sendUdpWithTpp(tb.host(3).mac(), tb.host(3).ip(), 5000,
                                5000, {}, apps::makeTraceProgram(8, 3));
    });
  }

  tb.sim().run(sim::Time::sec(2));
  flow.stop();
  controller.stop();
  monitor.stop();
  tb.sim().run();

  // All three tasks made progress without cross-talk.
  EXPECT_NEAR(controller.currentRateBps(), static_cast<double>(kBottleneck),
              0.3 * kBottleneck);
  EXPECT_GT(monitor.resultsReceived(), 1000u);
  EXPECT_EQ(monitor.hopsObserved(), 2u);
  EXPECT_EQ(collector.count(), 10u);
  for (const auto& trace : collector.traces()) {
    EXPECT_EQ(trace.hops.size(), 2u);
    EXPECT_FALSE(trace.faulted);
  }
}

TEST_F(MultiTaskFixture, GrantsIsolateTasksSramWindows) {
  // The agent partitions global SRAM: task 1 gets words [0,8), task 2 gets
  // [8,16) — on every switch.
  std::vector<core::SramGrant> g1, g2;
  for (std::size_t s = 0; s < tb.switchCount(); ++s) {
    g1.push_back(*tb.sw(s).sramAllocator().allocate(1, 8));
    g2.push_back(*tb.sw(s).sramAllocator().allocate(2, 8));
  }

  // Task 1 writes its window: succeeds.
  core::ProgramBuilder ok;
  ok.task(1);
  ok.storeImm(g1[0].baseAddress(), 0x11);
  // Task 1 touching task 2's window: faults with GrantViolation.
  core::ProgramBuilder bad;
  bad.task(1);
  bad.storeImm(g2[0].baseAddress(), 0x22);

  std::vector<core::ExecutedTpp> results;
  tb.host(0).onTppResult(
      [&](const core::ExecutedTpp& t) { results.push_back(t); });
  tb.host(0).sendProbe(tb.host(2).mac(), tb.host(2).ip(), *ok.build());
  tb.sim().schedule(sim::Time::ms(1), [&] {
    tb.host(0).sendProbe(tb.host(2).mac(), tb.host(2).ip(), *bad.build());
  });
  tb.sim().run();

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].header.faultCode, core::Fault::None);
  EXPECT_EQ(results[1].header.faultCode, core::Fault::GrantViolation);
  EXPECT_EQ(tb.sw(0).scratchRead(g1[0].baseAddress()), 0x11u);
  EXPECT_EQ(tb.sw(0).scratchRead(g2[0].baseAddress()), 0u);
}

TEST_F(MultiTaskFixture, UntrustedEdgeStripsButTrustedCoreExecutes) {
  // Model a multi-tenant edge (§4): h1's port on the left switch is
  // untrusted; h0's port is trusted infrastructure.
  tb.sw(0).edgeFilter().setPortPolicy(1, core::EdgePolicy::Strip);

  int fromTrusted = 0, fromUntrusted = 0;
  tb.host(2).onTppArrival([&](const core::ExecutedTpp&) { ++fromTrusted; });
  tb.host(3).onTppArrival([&](const core::ExecutedTpp&) { ++fromUntrusted; });
  int untrustedData = 0;
  tb.host(3).bindUdp(6000,
                     [&](const host::UdpDatagram&) { ++untrustedData; });

  core::ProgramBuilder b;
  b.push(core::addr::SwitchId);
  b.reserve(4);
  tb.host(0).sendUdpWithTpp(tb.host(2).mac(), tb.host(2).ip(), 6000, 6000,
                            {}, *b.build());
  tb.host(1).sendUdpWithTpp(tb.host(3).mac(), tb.host(3).ip(), 6000, 6000,
                            {}, *b.build());
  tb.sim().run();

  EXPECT_EQ(fromTrusted, 1);
  EXPECT_EQ(fromUntrusted, 0);   // shim stripped at the edge
  EXPECT_EQ(untrustedData, 1);   // data still flows
  EXPECT_EQ(tb.sw(0).edgeFilter().stripped(), 1u);
}

TEST_F(MultiTaskFixture, ConcurrentCstoreWritersStayConsistent) {
  // A1 ablation shape: two hosts increment one shared SRAM counter with
  // CSTORE read-modify-write loops; the final value equals the number of
  // successful swaps observed — no lost updates.
  const std::uint16_t counter = core::kSramBase;
  int h0Success = 0, h1Success = 0;
  int h0Attempts = 0, h1Attempts = 0;

  // Each host tracks the last value it read and tries to CAS last -> last+1.
  // Retries back off by a random jitter — with perfectly symmetric timing a
  // deterministic simulator would let one writer win every race forever.
  struct Writer {
    Testbed& tb;
    host::Host& src;
    net::MacAddress dstMac;
    net::Ipv4Address dstIp;
    std::uint16_t counterAddr;
    std::uint32_t lastSeen = 0;
    int* successes;
    int* attempts;
    sim::Rng rng{0};

    void fireSoon() {
      tb.sim().schedule(
          sim::Time::ns(rng.uniformInt(0, 200'000)), [this] { fire(); });
    }

    void fire() {
      core::ProgramBuilder b;
      // Restrict the read-modify-write to the one switch both writers
      // share, so the observed-old-value protocol is unambiguous.
      b.cexec(core::addr::SwitchId, 0xffffffff, 1);
      std::uint8_t off = 0;
      b.cstore(counterAddr, lastSeen, lastSeen + 1, &off);
      auto program = *b.build();
      src.sendProbe(dstMac, dstIp, program);
      ++*attempts;
    }
    void onResult(const core::ExecutedTpp& t) {
      if (t.instructions.size() < 2 ||
          t.instructions[1].op != core::Opcode::Cstore) {
        return;
      }
      const std::uint32_t observed = t.pmem[t.instructions[1].pmemOff];
      if (observed == lastSeen) {
        ++*successes;
        lastSeen = lastSeen + 1;
      } else {
        lastSeen = observed;  // lost the race; retry from the new value
      }
      if (*attempts < 50) fireSoon();
    }
  };

  Writer w0{tb, tb.host(0), tb.host(2).mac(), tb.host(2).ip(), counter,
            0, &h0Success, &h0Attempts, sim::Rng(101)};
  Writer w1{tb, tb.host(1), tb.host(3).mac(), tb.host(3).ip(), counter,
            0, &h1Success, &h1Attempts, sim::Rng(202)};
  tb.host(0).onTppResult([&](const core::ExecutedTpp& t) { w0.onResult(t); });
  tb.host(1).onTppResult([&](const core::ExecutedTpp& t) { w1.onResult(t); });
  w0.fire();
  w1.fire();
  tb.sim().run();

  // Linearizability invariant: the counter equals the number of successful
  // swaps — concurrent writers lost no updates (§2.2's CSTORE guarantee).
  const auto final0 = *tb.sw(0).scratchRead(counter);
  EXPECT_GT(h0Success, 0);
  EXPECT_GT(h1Success, 0);
  EXPECT_EQ(static_cast<int>(final0), h0Success + h1Success);
}

}  // namespace
}  // namespace tpp
