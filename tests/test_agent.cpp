#include "src/core/agent.hpp"

#include <gtest/gtest.h>

namespace tpp::core {
namespace {

TEST(SramAllocator, OpenModeAllowsEverything) {
  SramAllocator a;
  EXPECT_FALSE(a.enforcing());
  EXPECT_TRUE(a.allows(0, kSramBase));
  EXPECT_TRUE(a.allows(42, kPortScratchBase + 100));
}

TEST(SramAllocator, NonScratchAddressesAreNotItsConcern) {
  SramAllocator a;
  a.allocate(1, 4);
  EXPECT_TRUE(a.enforcing());
  EXPECT_TRUE(a.allows(99, addr::QueueBytes));
  EXPECT_TRUE(a.allows(99, addr::SwitchId));
}

TEST(SramAllocator, GrantCoversItsWindowOnly) {
  SramAllocator a;
  const auto g = a.allocate(1, 4);
  ASSERT_TRUE(g);
  EXPECT_EQ(g->baseAddress(), kSramBase);
  EXPECT_TRUE(a.allows(1, kSramBase));
  EXPECT_TRUE(a.allows(1, kSramBase + 3));
  EXPECT_FALSE(a.allows(1, kSramBase + 4));
  EXPECT_FALSE(a.allows(2, kSramBase));  // other task
}

TEST(SramAllocator, AllocationsAreDisjoint) {
  SramAllocator a;
  const auto g1 = a.allocate(1, 4);
  const auto g2 = a.allocate(2, 4);
  ASSERT_TRUE(g1);
  ASSERT_TRUE(g2);
  EXPECT_EQ(g2->baseWord, g1->baseWord + g1->words);
  EXPECT_FALSE(a.allows(1, g2->baseAddress()));
  EXPECT_FALSE(a.allows(2, g1->baseAddress()));
}

TEST(SramAllocator, PerPortRegionIsSeparate) {
  SramAllocator a;
  const auto global = a.allocate(1, 4, StatNamespace::Sram);
  const auto perPort = a.allocate(1, 4, StatNamespace::PortScratch);
  ASSERT_TRUE(global);
  ASSERT_TRUE(perPort);
  EXPECT_EQ(perPort->baseAddress(), kPortScratchBase);
  EXPECT_TRUE(a.allows(1, perPort->baseAddress()));
}

TEST(SramAllocator, ReleaseFreesAndReusesSpace) {
  SramAllocator a;
  const auto g1 = a.allocate(1, 8);
  ASSERT_TRUE(g1);
  a.release(1);
  const auto g2 = a.allocate(2, 8);
  ASSERT_TRUE(g2);
  EXPECT_EQ(g2->baseWord, g1->baseWord);  // first-fit reuses the hole
}

TEST(SramAllocator, FirstFitFillsGaps) {
  SramAllocator a;
  const auto g1 = a.allocate(1, 4);
  const auto g2 = a.allocate(2, 4);
  ASSERT_TRUE(g1 && g2);
  a.release(1);
  const auto g3 = a.allocate(3, 2);  // fits in the released hole
  ASSERT_TRUE(g3);
  EXPECT_EQ(g3->baseWord, 0);
}

TEST(SramAllocator, ExhaustionFails) {
  SramAllocator a;
  EXPECT_TRUE(a.allocate(1, kSramWords));
  EXPECT_FALSE(a.allocate(2, 1));
}

// Exhaustion must say WHO wanted WHAT and what was actually left — "grant
// failed" alone sends the operator into the allocator with a debugger.
TEST(SramAllocator, ExhaustionDiagnosticNamesTaskRequestAndFreeExtent) {
  SramAllocator a;
  ASSERT_TRUE(a.allocate(1, kSramWords - 10));
  std::string whyNot;
  EXPECT_FALSE(a.allocate(8, 300, StatNamespace::Sram, &whyNot));
  EXPECT_NE(whyNot.find("task 8"), std::string::npos) << whyNot;
  EXPECT_NE(whyNot.find("requested 300"), std::string::npos) << whyNot;
  EXPECT_NE(whyNot.find("Sram"), std::string::npos) << whyNot;
  // The largest free extent (10 words) and the region size both appear, so
  // the caller can tell fragmentation from genuine exhaustion.
  EXPECT_NE(whyNot.find("largest free extent is 10"), std::string::npos)
      << whyNot;
  EXPECT_NE(whyNot.find(std::to_string(kSramWords)), std::string::npos)
      << whyNot;
}

TEST(SramAllocator, ExhaustionDiagnosticReportsFragmentationHole) {
  SramAllocator a;
  const auto g1 = a.allocate(1, 100);
  const auto g2 = a.allocate(2, kSramWords - 100);
  ASSERT_TRUE(g1 && g2);
  a.release(1);  // a 100-word hole at the front, nothing past g2
  std::string whyNot;
  EXPECT_FALSE(a.allocate(3, 200, StatNamespace::Sram, &whyNot));
  EXPECT_NE(whyNot.find("task 3"), std::string::npos) << whyNot;
  EXPECT_NE(whyNot.find("requested 200"), std::string::npos) << whyNot;
  EXPECT_NE(whyNot.find("largest free extent is 100"), std::string::npos)
      << whyNot;
}

TEST(SramAllocator, RejectsDegenerateRequests) {
  SramAllocator a;
  EXPECT_FALSE(a.allocate(1, 0));
  EXPECT_FALSE(a.allocate(1, 4, StatNamespace::Queue));
  std::string whyNot;
  EXPECT_FALSE(a.allocate(5, 0, StatNamespace::Sram, &whyNot));
  EXPECT_NE(whyNot.find("task 5"), std::string::npos) << whyNot;
  EXPECT_NE(whyNot.find("zero-word"), std::string::npos) << whyNot;
  EXPECT_FALSE(a.allocate(6, 4, StatNamespace::Queue, &whyNot));
  EXPECT_NE(whyNot.find("task 6"), std::string::npos) << whyNot;
  EXPECT_NE(whyNot.find("only Sram and PortScratch"), std::string::npos)
      << whyNot;
}

TEST(SramAllocator, MultipleGrantsPerTask) {
  SramAllocator a;
  // A second task keeps the allocator in enforcing mode after release(1);
  // with no grants at all it would fall back to open mode.
  ASSERT_TRUE(a.allocate(9, 1));
  const auto g1 = a.allocate(1, 2);
  const auto g2 = a.allocate(1, 2);
  ASSERT_TRUE(g1 && g2);
  EXPECT_TRUE(a.allows(1, g1->baseAddress()));
  EXPECT_TRUE(a.allows(1, g2->baseAddress()));
  a.release(1);
  EXPECT_FALSE(a.allows(1, g1->baseAddress()));
}

TEST(SramAllocator, ReleasingLastGrantReopens) {
  SramAllocator a;
  const auto g = a.allocate(1, 2);
  ASSERT_TRUE(g);
  a.release(1);
  EXPECT_FALSE(a.enforcing());
  EXPECT_TRUE(a.allows(2, g->baseAddress()));
}

TEST(SramAllocator, PublishNameMakesSymbolResolvable) {
  SramAllocator a;
  const auto g = a.allocate(7, 4);
  ASSERT_TRUE(g);
  MemoryMap map = MemoryMap::standard();
  SramAllocator::publishName(map, *g, 2, "MyTask:Counter");
  EXPECT_EQ(map.resolve("MyTask:Counter"), g->baseAddress() + 2);
}

}  // namespace
}  // namespace tpp::core
