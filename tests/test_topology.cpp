#include "src/host/topology.hpp"

#include <gtest/gtest.h>

namespace tpp::host {
namespace {

int pingDelivered(Testbed& tb, std::size_t from, std::size_t to) {
  int delivered = 0;
  tb.host(to).bindUdp(9000, [&](const UdpDatagram&) { ++delivered; });
  tb.host(from).sendUdp(tb.host(to).mac(), tb.host(to).ip(), 9000, 9000, {});
  tb.sim().run();
  return delivered;
}

TEST(Topology, ChainConnectsEndHosts) {
  Testbed tb;
  buildChain(tb, 4, LinkParams{1'000'000'000, sim::Time::us(1)});
  EXPECT_EQ(tb.hostCount(), 2u);
  EXPECT_EQ(tb.switchCount(), 4u);
  EXPECT_EQ(pingDelivered(tb, 0, 1), 1);
}

TEST(Topology, ChainWorksBothDirections) {
  Testbed tb;
  buildChain(tb, 3, LinkParams{1'000'000'000, sim::Time::us(1)});
  EXPECT_EQ(pingDelivered(tb, 1, 0), 1);
}

TEST(Topology, SingleSwitchChain) {
  Testbed tb;
  buildChain(tb, 1, LinkParams{1'000'000'000, sim::Time::us(1)});
  EXPECT_EQ(pingDelivered(tb, 0, 1), 1);
}

TEST(Topology, DumbbellAllPairsConnect) {
  Testbed tb;
  buildDumbbell(tb, 3, LinkParams{1'000'000'000, sim::Time::us(1)},
                LinkParams{100'000'000, sim::Time::us(10)});
  EXPECT_EQ(tb.hostCount(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    Testbed tb2;
    buildDumbbell(tb2, 3, LinkParams{1'000'000'000, sim::Time::us(1)},
                  LinkParams{100'000'000, sim::Time::us(10)});
    EXPECT_EQ(pingDelivered(tb2, i, 3 + i), 1) << "pair " << i;
  }
}

TEST(Topology, DumbbellCrossTrafficRoutes) {
  Testbed tb;
  buildDumbbell(tb, 2, LinkParams{1'000'000'000, sim::Time::us(1)},
                LinkParams{100'000'000, sim::Time::us(10)});
  // Sender 0 to receiver of pair 1.
  EXPECT_EQ(pingDelivered(tb, 0, 3), 1);
  // Sender-to-sender stays on the left switch.
  Testbed tb2;
  buildDumbbell(tb2, 2, LinkParams{1'000'000'000, sim::Time::us(1)},
                LinkParams{100'000'000, sim::Time::us(10)});
  EXPECT_EQ(pingDelivered(tb2, 0, 1), 1);
  EXPECT_EQ(tb2.sw(1).stats().totalRxPackets, 0u);  // never crossed
}

TEST(Topology, StarConnectsSendersToReceiver) {
  Testbed tb;
  buildStar(tb, 5, LinkParams{1'000'000'000, sim::Time::us(1)});
  EXPECT_EQ(tb.hostCount(), 6u);
  EXPECT_EQ(tb.switchCount(), 1u);
  EXPECT_EQ(pingDelivered(tb, 0, 5), 1);
}

TEST(Topology, AttachmentOfFindsEdgeSwitch) {
  Testbed tb;
  buildDumbbell(tb, 2, LinkParams{1'000'000'000, sim::Time::us(1)},
                LinkParams{100'000'000, sim::Time::us(10)});
  const auto att = tb.attachmentOf(tb.host(0));
  ASSERT_NE(att.sw, nullptr);
  EXPECT_EQ(att.sw, &tb.sw(0));
  EXPECT_EQ(att.port, 0u);
  const auto attR = tb.attachmentOf(tb.host(3));
  EXPECT_EQ(attR.sw, &tb.sw(1));
  EXPECT_EQ(attR.port, 1u);
}

TEST(Topology, RoutesUseShortestPath) {
  // Custom triangle: sw0--sw1 direct, and sw0--sw2--sw1 long way.
  Testbed tb;
  auto& h0 = tb.addHost();
  auto& h1 = tb.addHost();
  asic::SwitchConfig cfg;
  auto& s0 = tb.addSwitch(cfg);
  auto& s1 = tb.addSwitch(cfg);
  auto& s2 = tb.addSwitch(cfg);
  const LinkParams lp{1'000'000'000, sim::Time::us(1)};
  tb.link(h0, 0, s0, 0, lp.rateBps, lp.delay);
  tb.link(h1, 0, s1, 0, lp.rateBps, lp.delay);
  tb.link(s0, 1, s1, 1, lp.rateBps, lp.delay);  // direct
  tb.link(s0, 2, s2, 0, lp.rateBps, lp.delay);  // detour
  tb.link(s2, 1, s1, 2, lp.rateBps, lp.delay);
  tb.installAllRoutes();

  int delivered = 0;
  h1.bindUdp(9000, [&](const UdpDatagram&) { ++delivered; });
  h0.sendUdp(h1.mac(), h1.ip(), 9000, 9000, {});
  tb.sim().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(tb.sw(2).stats().totalRxPackets, 0u);  // detour unused
}

TEST(Topology, HostNamesAndDefaults) {
  Testbed tb;
  auto& h = tb.addHost();
  auto& s = tb.addSwitch();
  EXPECT_EQ(h.name(), "h0");
  EXPECT_EQ(s.name(), "sw0");
  EXPECT_EQ(s.config().switchId, 1u);
  auto& named = tb.addSwitch({}, "core-1");
  EXPECT_EQ(named.name(), "core-1");
}

}  // namespace
}  // namespace tpp::host
