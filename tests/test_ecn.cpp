// ECN marking (the paper's §4 fixed-function baseline: "a router stamps a
// bit in the IP header whenever the egress queue occupancy exceeds a
// configurable threshold").
#include <gtest/gtest.h>

#include "src/host/flow.hpp"
#include "src/host/topology.hpp"
#include "src/net/ipv4.hpp"

namespace tpp::asic {
namespace {

using host::Testbed;

TEST(EcnHeader, MarkCeSetsBitsAndKeepsChecksumValid) {
  std::vector<std::uint8_t> buf(net::kIpv4HeaderSize, 0);
  net::Ipv4Header h;
  h.totalLength = 40;
  h.src = net::Ipv4Address::forHost(1);
  h.dst = net::Ipv4Address::forHost(2);
  h.write(buf);
  net::Ipv4Header::markCe(buf);
  const auto parsed = net::Ipv4Header::parse(buf);
  ASSERT_TRUE(parsed) << "checksum must remain valid after marking";
  EXPECT_EQ(parsed->ecn, net::kEcnCe);
}

TEST(EcnHeader, MarkCeIsIdempotent) {
  std::vector<std::uint8_t> buf(net::kIpv4HeaderSize, 0);
  net::Ipv4Header h;
  h.totalLength = 40;
  h.write(buf);
  net::Ipv4Header::markCe(buf);
  const auto once = buf;
  net::Ipv4Header::markCe(buf);
  EXPECT_EQ(buf, once);
}

TEST(EcnHeader, EcnFieldRoundTrips) {
  std::vector<std::uint8_t> buf(net::kIpv4HeaderSize, 0);
  net::Ipv4Header h;
  h.totalLength = 40;
  h.ecn = net::kEcnEct0;
  h.write(buf);
  EXPECT_EQ(net::Ipv4Header::parse(buf)->ecn, net::kEcnEct0);
}

struct EcnFixture : public ::testing::Test {
  Testbed tb;
  int marked = 0;
  int received = 0;
  std::unique_ptr<host::PacedFlow> flow;

  void setup(std::uint64_t thresholdBytes) {
    asic::SwitchConfig cfg;
    cfg.ecnThresholdBytes = thresholdBytes;
    cfg.bufferPerQueueBytes = 1 << 20;
    // 1G edges into a 10M bottleneck: the left switch queues deeply.
    buildDumbbell(tb, 1, host::LinkParams{1'000'000'000, sim::Time::us(10)},
                  host::LinkParams{10'000'000, sim::Time::us(10)}, cfg);
    tb.host(1).bindUdp(20000, [this](const host::UdpDatagram& d) {
      ++received;
      if (d.ecn == net::kEcnCe) ++marked;
    });
    host::FlowSpec spec;
    spec.dstMac = tb.host(1).mac();
    spec.dstIp = tb.host(1).ip();
    spec.rateBps = 30e6;  // 3x bottleneck: standing queue
    flow = std::make_unique<host::PacedFlow>(tb.host(0), spec, 1);
  }
};

TEST_F(EcnFixture, MarksWhenQueueExceedsThreshold) {
  setup(10'000);
  flow->start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(100));
  flow->stop();
  tb.sim().run(tb.sim().now() + sim::Time::sec(2));
  EXPECT_GT(received, 50);
  // Persistent 3x overload: almost every delivered packet saw > 10 KB.
  EXPECT_GT(marked, received / 2);
}

TEST_F(EcnFixture, NoMarkingWhenDisabled) {
  setup(0);
  flow->start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(100));
  flow->stop();
  tb.sim().run(tb.sim().now() + sim::Time::sec(2));
  EXPECT_GT(received, 50);
  EXPECT_EQ(marked, 0);
}

TEST_F(EcnFixture, NoMarkingBelowThreshold) {
  setup(1 << 20);  // threshold = whole buffer: unreachable
  flow->start(sim::Time::zero());
  tb.sim().run(sim::Time::ms(100));
  flow->stop();
  tb.sim().run(tb.sim().now() + sim::Time::sec(2));
  EXPECT_GT(received, 50);
  EXPECT_EQ(marked, 0);
}

TEST_F(EcnFixture, MarkedPacketsStillParseEverywhere) {
  // A TPP-shimmed packet that gets CE-marked must still strip cleanly and
  // deliver (marking happens on the INNER header behind the shim).
  setup(1);  // mark on any occupancy
  core::ProgramBuilder b;
  b.push(core::addr::QueueBytes);
  b.reserve(4);
  int tppSeen = 0;
  tb.host(1).onTppArrival([&](const core::ExecutedTpp&) { ++tppSeen; });
  // Create backlog so the queue is non-empty when the probe arrives.
  flow->start(sim::Time::zero());
  tb.sim().schedule(sim::Time::ms(10), [&] {
    tb.host(0).sendUdpWithTpp(tb.host(1).mac(), tb.host(1).ip(), 20000,
                              20000, std::vector<std::uint8_t>(20, 0),
                              *b.build());
  });
  tb.sim().run(sim::Time::ms(50));
  flow->stop();
  tb.sim().run(tb.sim().now() + sim::Time::sec(2));
  EXPECT_EQ(tppSeen, 1);
  EXPECT_GT(marked, 0);
}

}  // namespace
}  // namespace tpp::asic
